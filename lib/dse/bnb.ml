open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type stats = {
  nodes : int;
  explored : int;
  pruned_bound : int;
  pruned_infeasible : int;
}

(* Largest index j with arr.(j) <= bound, or -1; arr is increasing. *)
let last_le arr bound =
  if Array.length arr = 0 || arr.(0) > bound then -1
  else begin
    (* invariant: arr.(lo) <= bound < arr.(hi) (hi = len treated as inf) *)
    let lo = ref 0 and hi = ref (Array.length arr) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) <= bound then lo := mid else hi := mid
    done;
    !lo
  end

let find_exact arr v =
  let j = last_le arr v in
  if j >= 0 && arr.(j) = v then Some j else None

let order_index order =
  let rec go i = function
    | [] -> None
    | o :: tl -> if Order.equal o order then Some i else go (i + 1) tl
  in
  go 0 Order.all

let n_orders = List.length Order.all

let dim_tag = function Dim.M -> 0 | Dim.K -> 1 | Dim.L -> 2

(* Dimensions in decreasing traffic impact (sum of the sizes of the two
   operands indexed by the dimension); ties keep the M, K, L order. A
   dimension with high impact decides more of the bound, so assigning it
   first makes partial-node bounds tight early and prunes high in the
   tree. *)
let dims_by_impact impact =
  Array.of_list
    (List.stable_sort (fun a b -> compare (impact b) (impact a)) Dim.all)

(* Mutable search counters; frozen into [stats] on exit. *)
type counters = {
  mutable c_nodes : int;
  mutable c_explored : int;
  mutable c_pruned_bound : int;
  mutable c_pruned_infeasible : int;
}

let freeze c =
  { nodes = c.c_nodes;
    explored = c.c_explored;
    pruned_bound = c.c_pruned_bound;
    pruned_infeasible = c.c_pruned_infeasible }

(* ------------------------------------------------------------------ *)
(* Intra-operator search                                               *)
(* ------------------------------------------------------------------ *)

let search_with_stats ?(lattice = Space.Divisors) ?seed (op : Matmul.t) buf =
  Trace.with_span ~cat:"bnb" "bnb.search" @@ fun () ->
  let space = Space.compile lattice op buf in
  let capacity = Space.capacity space in
  let arr_of d = Space.candidates space d in
  let nk = Array.length (arr_of Dim.K) and nl = Array.length (arr_of Dim.L) in
  let c =
    { c_nodes = 0; c_explored = 0; c_pruned_bound = 0; c_pruned_infeasible = 0 }
  in
  (* Assigned candidate index per dimension, -1 = unassigned. *)
  let idx = [| -1; -1; -1 |] in
  let tile d =
    let i = idx.(dim_tag d) in
    if i < 0 then 1 else (arr_of d).(i)
  in
  let assigned d = idx.(dim_tag d) >= 0 in
  (* Minimal-completion footprint: unassigned dimensions at tile 1. It
     is monotone in each candidate, which is what lets the per-level
     candidate loops stop at the first infeasible value — the same
     block-skip argument as Space.fold_tiling_range. *)
  let fp_min () =
    let m = tile Dim.M and k = tile Dim.K and l = tile Dim.L in
    (m * k) + ((m + k) * l)
  in
  (* Fewest trips dimension [d] can make anywhere in this subtree: the
     exact trip count when assigned, otherwise the trips of the largest
     candidate that still fits with the other open dimensions relaxed
     to tile 1 (an under-approximation of trips, as a bound needs). *)
  let trips_lb d =
    let dim = Matmul.dim op d in
    if assigned d then Arith.ceil_div dim (tile d)
    else begin
      let a, b =
        match d with
        | Dim.M -> (tile Dim.K, tile Dim.L)
        | Dim.K -> (tile Dim.M, tile Dim.L)
        | Dim.L -> (tile Dim.M, tile Dim.K)
      in
      let tmax = (capacity - (a * b)) / (a + b) in
      let j = last_le (arr_of d) tmax in
      if j < 0 then Arith.ceil_div dim 1 else Arith.ceil_div dim (arr_of d).(j)
    end
  in
  let ideal = Matmul.ideal_ma op in
  (* Admissible node bound (DESIGN.md section 4c): for any two
     dimensions that are both revisited (trips > 1), the two operands
     they are free dimensions of cannot both be non-redundant — their
     NRA conditions need the two free dimensions each inner to the
     other. So at least |H| - 1 of the operands freed by hot dimensions
     pay their full (trips - 1) x size penalty; the adversary saves the
     most expensive one. Exact at leaves (all trips known). *)
  let lower_bound () =
    let pen d n = (n - 1) * Matmul.operand_size op (Operand.of_free_dim d) in
    let hot =
      List.filter_map
        (fun d ->
          let n = trips_lb d in
          if n > 1 then Some (pen d n) else None)
        Dim.all
    in
    let penalty =
      match hot with
      | [] | [ _ ] -> 0
      | [ p1; p2 ] -> min p1 p2
      | [ p1; p2; p3 ] -> min (p1 + p2) (min (p1 + p3) (p2 + p3))
      | _ -> 0
    in
    ideal + penalty
  in
  (* Incumbent: (schedule, cost, raw schedule index). Kept in the exact
     (cost.total, index) lexicographic order Exhaustive.search minimizes,
     so the search returns Exhaustive's first-index optimum bit-for-bit:
     a subtree is cut only when every point in it is lexicographically
     at or beyond the incumbent. *)
  let best = ref None in
  (match seed with
  | None -> ()
  | Some (s : Schedule.t) -> (
    (* Only a seed that is itself a point of the compiled space may
       become the incumbent — an off-lattice seed could otherwise beat
       (and so hide) the in-space optimum the caller asked for. *)
    let locate d = find_exact (arr_of d) (Tiling.get s.Schedule.tiling d) in
    match (locate Dim.M, locate Dim.K, locate Dim.L, order_index s.Schedule.order)
    with
    | Some im, Some ik, Some il, Some io when Schedule.fits s buf ->
      let cost = Cost.eval op s in
      c.c_explored <- c.c_explored + 1;
      let ti = (((im * nk) + ik) * nl) + il in
      best := Some (s, cost, (ti * n_orders) + io)
    | _ -> ()));
  let min_subtree_idx () =
    let part d stride = if assigned d then idx.(dim_tag d) * stride else 0 in
    (part Dim.M (nk * nl) + part Dim.K nl + part Dim.L 1) * n_orders
  in
  let prunable lb =
    match !best with
    | None -> false
    | Some (_, (bc : Cost.t), bi) ->
      lb > bc.total || (lb = bc.total && min_subtree_idx () > bi)
  in
  let leaf () =
    let m = tile Dim.M and k = tile Dim.K and l = tile Dim.L in
    let tiling = Tiling.make op ~m ~k ~l in
    let ti = (((idx.(0) * nk) + idx.(1)) * nl) + idx.(2) in
    List.iteri
      (fun o order ->
        let s = Schedule.make tiling order in
        let cost = Cost.eval op s in
        c.c_explored <- c.c_explored + 1;
        let i = (ti * n_orders) + o in
        match !best with
        | Some (_, (bc : Cost.t), bi) when (bc.total, bi) <= (cost.Cost.total, i)
          -> ()
        | _ -> best := Some (s, cost, i))
      Order.all
  in
  let impact d =
    List.fold_left
      (fun acc x ->
        if Operand.uses_dim x d then acc + Matmul.operand_size op x else acc)
      0 Operand.all
  in
  let order_dims = dims_by_impact impact in
  let rec node depth =
    if depth = 3 then leaf ()
    else begin
      let d = order_dims.(depth) in
      let a = arr_of d and td = dim_tag d in
      let n = Array.length a in
      let j = ref 0 and live = ref true in
      while !live && !j < n do
        idx.(td) <- !j;
        if fp_min () > capacity then begin
          (* monotone footprint: every larger candidate is infeasible too *)
          c.c_pruned_infeasible <- c.c_pruned_infeasible + (n - !j);
          live := false
        end
        else if prunable (lower_bound ()) then
          c.c_pruned_bound <- c.c_pruned_bound + 1
        else begin
          c.c_nodes <- c.c_nodes + 1;
          node (depth + 1)
        end;
        incr j
      done;
      idx.(td) <- -1
    end
  in
  node 0;
  ( Option.map
      (fun (schedule, cost, _) ->
        { Exhaustive.schedule; cost; explored = c.c_explored })
      !best,
    freeze c )

let search ?lattice ?seed op buf = fst (search_with_stats ?lattice ?seed op buf)

(* ------------------------------------------------------------------ *)
(* Fused-pair search                                                   *)
(* ------------------------------------------------------------------ *)

let search_fused_with_stats ?(lattice = Space.Divisors) ?seed
    (pair : Fused.pair) buf =
  Trace.with_span ~cat:"bnb" "bnb.search_fused" @@ fun () ->
  let { Fused.op1; op2 } = pair in
  let space = Space.compile lattice op1 buf in
  let capacity = Space.capacity space in
  let arr_of d = Space.candidates space d in
  let ks = arr_of Dim.K and ls = arr_of Dim.L in
  let nk = Array.length ks and nl = Array.length ls in
  let l2s = Array.of_list (Space.tile_candidates lattice op2.l) in
  let c =
    { c_nodes = 0; c_explored = 0; c_pruned_bound = 0; c_pruned_infeasible = 0 }
  in
  let idx = [| -1; -1; -1 |] in
  let tile d =
    let i = idx.(dim_tag d) in
    if i < 0 then 1 else (arr_of d).(i)
  in
  let assigned d = idx.(dim_tag d) >= 0 in
  (* Minimal fused footprint over the subtree: producer footprint plus
     the consumer's completion at its cheapest (t_L2 = 1), minus the
     shared intermediate tile — Fused.footprint with the open producer
     dimensions at 1. Monotone in every producer candidate. *)
  let fp_min () =
    let m = tile Dim.M and k = tile Dim.K and l = tile Dim.L in
    (m * k) + ((m + k) * l) + m + l
  in
  let trips_lb d =
    let dim = Matmul.dim op1 d in
    if assigned d then Arith.ceil_div dim (tile d)
    else begin
      (* fp as a linear function of this tile, other open dims at 1 *)
      let m = tile Dim.M and k = tile Dim.K and l = tile Dim.L in
      let tmax =
        match d with
        | Dim.M -> (capacity - (l * (k + 1))) / (k + l + 1)
        | Dim.K -> (capacity - ((m * l) + m + l)) / (m + l)
        | Dim.L -> (capacity - (m * (k + 1))) / (m + k + 1)
      in
      let j = last_le (arr_of d) tmax in
      if j < 0 then Arith.ceil_div dim 1 else Arith.ceil_div dim (arr_of d).(j)
    end
  in
  let s_a1 = op1.m * op1.k
  and s_b1 = op1.k * op1.l
  and s_b2 = op2.k * op2.l
  and s_c2 = op2.m * op2.l in
  let base = s_a1 + s_b1 + s_b2 + s_c2 in
  (* Fused traffic bound. The intermediate is pinned non-redundant on
     both sides (Fused.validate), which turns the producer's pairwise
     NRA exclusions into forced revisits: a hot K conflicts with both
     A1 (free L) and B1 (free M), so those penalties add rather than
     compete. The consumer shares the producer's M and L trip counts
     (same tiles, same dimension sizes) and keeps the usual exclusion
     between B2 and C2. *)
  let lower_bound () =
    let n_m = trips_lb Dim.M and n_k = trips_lb Dim.K and n_l = trips_lb Dim.L in
    let p = ref 0 in
    if n_k > 1 then begin
      if n_m > 1 then p := !p + ((n_m - 1) * s_b1);
      if n_l > 1 then p := !p + ((n_l - 1) * s_a1)
    end
    else if n_m > 1 && n_l > 1 then
      p := !p + min ((n_m - 1) * s_b1) ((n_l - 1) * s_a1);
    if n_m > 1 && n_l > 1 then
      p := !p + min ((n_m - 1) * s_b2) ((n_l - 1) * s_c2);
    base + !p
  in
  (* Incumbent found by enumeration, in Fused_search.exhaustive's
     (traffic, producer-tiling-index) lexicographic order. The seed is
     never installed as the incumbent — within a tiling the exhaustive
     tie-break is arrival order, which only the leaf scan reproduces —
     it acts purely as an extra pruning bound. *)
  let best = ref None in
  let seed_bound = ref None in
  (match seed with
  | None -> ()
  | Some (f : Fused.t) -> (
    let pt = f.Fused.producer.Schedule.tiling in
    let locate d = find_exact (arr_of d) (Tiling.get pt d) in
    match
      ( locate Dim.M,
        locate Dim.K,
        locate Dim.L,
        find_exact l2s (Tiling.get f.Fused.consumer.Schedule.tiling Dim.L) )
    with
    | Some im, Some ik, Some il, Some _ -> (
      match Fused.eval pair f buf with
      | Ok traffic ->
        c.c_explored <- c.c_explored + 1;
        seed_bound := Some (traffic, (((im * nk) + ik) * nl) + il)
      | Error _ -> ())
    | _ -> ()));
  let min_subtree_tidx () =
    let part d stride = if assigned d then idx.(dim_tag d) * stride else 0 in
    part Dim.M (nk * nl) + part Dim.K nl + part Dim.L 1
  in
  let prunable lb =
    let beyond (bt, bi) = lb > bt || (lb = bt && min_subtree_tidx () > bi) in
    (match !best with Some (_, bt, bi) -> beyond (bt, bi) | None -> false)
    || match !seed_bound with Some sb -> beyond sb | None -> false
  in
  let leaf () =
    let m = tile Dim.M and k = tile Dim.K and l = tile Dim.L in
    let tiling = Tiling.make op1 ~m ~k ~l in
    let ti = (((idx.(0) * nk) + idx.(1)) * nl) + idx.(2) in
    (* Replicates the inner scan of Fused_search.exhaustive exactly
       (same candidate order, same first-seen tie-break) so the winner
       within a tiling is the same fused dataflow. *)
    let local = ref None in
    List.iter
      (fun o1 ->
        let producer = Schedule.make tiling o1 in
        if Cost.is_nra op1 producer Operand.C then
          List.iter
            (fun consumer ->
              c.c_explored <- c.c_explored + 1;
              let fused = { Fused.producer; consumer } in
              match Fused.eval pair fused buf with
              | Error _ -> ()
              | Ok traffic -> (
                match !local with
                | Some (_, bt) when bt <= traffic -> ()
                | _ -> local := Some (fused, traffic)))
            (Fused_search.consumer_candidates lattice pair producer buf))
      Order.all;
    match !local with
    | None -> ()
    | Some (fused, traffic) -> (
      match !best with
      | Some (_, bt, bi) when (bt, bi) <= (traffic, ti) -> ()
      | _ -> best := Some (fused, traffic, ti))
  in
  let impact d =
    let s_of x = Matmul.operand_size op1 x in
    match d with
    | Dim.M -> s_of Operand.A + s_c2
    | Dim.K -> s_of Operand.A + s_of Operand.B
    | Dim.L -> s_of Operand.B + s_b2
  in
  let order_dims = dims_by_impact impact in
  let rec node depth =
    if depth = 3 then leaf ()
    else begin
      let d = order_dims.(depth) in
      let a = arr_of d and td = dim_tag d in
      let n = Array.length a in
      let j = ref 0 and live = ref true in
      while !live && !j < n do
        idx.(td) <- !j;
        if fp_min () > capacity then begin
          c.c_pruned_infeasible <- c.c_pruned_infeasible + (n - !j);
          live := false
        end
        else if prunable (lower_bound ()) then
          c.c_pruned_bound <- c.c_pruned_bound + 1
        else begin
          c.c_nodes <- c.c_nodes + 1;
          node (depth + 1)
        end;
        incr j
      done;
      idx.(td) <- -1
    end
  in
  node 0;
  ( Option.map
      (fun (fused, traffic, _) ->
        { Fused_search.fused; traffic; explored = c.c_explored })
      !best,
    freeze c )

let search_fused ?lattice ?seed pair buf =
  fst (search_fused_with_stats ?lattice ?seed pair buf)
