(** Scaffolding shared by the stochastic search baselines ({!Annealing},
    {!Genetic}, {!Random_search} and the GA half of {!Fused_search}).

    The three intra-operator baselines are structurally the same walk:
    draw index tuples into the per-dimension candidate lattices, move by
    a half-local / half-restart step, track the first strict minimum
    seen. This module holds that scaffolding once so the baselines stay
    small and cannot drift apart; they remain in the tree as oracle
    cross-checks and benchmark lower bars only — the production mapper
    is {!Bnb}.

    Every helper is RNG-transparent: it makes exactly the [Random.State]
    draws its original inlined version made, in the same sequence, so
    the refactoring preserves each baseline's historical results
    bit-for-bit (locked by the determinism tests in [test_dse]). *)

open Fusecu_tensor
open Fusecu_loopnest

type arrays = {
  ms : int array;
  ks : int array;
  ls : int array;
  orders : Order.t array;
}
(** Per-dimension candidate tiles (increasing) plus the loop orders, as
    arrays for O(1) indexed access by genomes / walk states. *)

val arrays : Space.lattice -> Matmul.t -> arrays

val schedule_of :
  arrays -> Matmul.t -> im:int -> ik:int -> il:int -> iorder:int -> Schedule.t
(** Decode an index tuple into a schedule. *)

val nudge : Random.State.t -> len:int -> int -> int
(** One mutation step on an index in [\[0, len)]: a local move ([+-1],
    clamped) or a uniform restart, half/half. Makes two or three RNG
    draws — identical to the historical [bump]/[jiggle] inner step. *)

type ('a, 'score) tally = {
  mutable evaluations : int;
  mutable best : ('a * 'score) option;
}
(** Evaluation counter plus running optimum. [note] keeps the {e first}
    strict minimum (ties keep the earlier candidate), matching the
    deterministic first-seen rule used across the DSE searches. *)

val tally : unit -> ('a, 'score) tally

val tick : ('a, 'score) tally -> unit

val note : ('a, 'score) tally -> 'a -> 'score -> unit

val canonical :
  oriented:(Matmul.t -> Buffer.t -> Exhaustive.result option) ->
  Matmul.t -> Buffer.t -> Exhaustive.result option
(** Run a search on the canonical M<->L orientation ([m <= l]) and map
    the result back, so an operator and its transpose get bit-identical
    outcomes instead of two unrelated random walks. *)
