(** Exact branch-and-bound mapper over the tile lattice — the production
    replacement for full enumeration on the service hot path.

    The search assigns tile dimensions depth-first in decreasing
    traffic-impact order, cutting subtrees with two admissible devices:

    - {b monotone-footprint cuts}: candidate tiles are scanned in
      increasing order, so the first value whose minimal-completion
      footprint overflows the buffer rules out the rest of the level
      (the same block-skip argument {!Space.fold_tiling_range} uses);
    - {b communication lower bounds}: at every partial assignment, a
      per-tensor bound [ideal_ma + penalty] where the penalty comes from
      the pairwise exclusion of non-redundant-access operands (two
      revisited dimensions cannot both free an NRA operand). The bound
      is admissible everywhere and exact at leaves — see DESIGN.md
      section 4c for the proof.

    The incumbent can be seeded from the closed-form principles
    ({!Fusecu_core.Intra}), which on principle-optimal problems prunes
    almost the entire tree immediately. Seeded or not, the result is
    {e bit-for-bit} the one {!Exhaustive.search} returns — the incumbent
    order is the same (cost, raw-index) lexicographic order, and a
    subtree is only cut when every point in it compares at-or-beyond the
    incumbent. Off-lattice seeds (e.g. a plan quantized under a
    different mode) are discarded rather than trusted. *)

open Fusecu_tensor
open Fusecu_loopnest

type stats = {
  nodes : int;  (** partial assignments expanded (leaf tilings included) *)
  explored : int;  (** cost evaluations performed *)
  pruned_bound : int;  (** subtrees cut by the communication lower bound *)
  pruned_infeasible : int;
      (** candidate tiles skipped by the monotone-footprint cut *)
}

val search :
  ?lattice:Space.lattice -> ?seed:Schedule.t -> Matmul.t -> Buffer.t
  -> Exhaustive.result option
(** Best schedule, identical (schedule, cost, tie-break) to
    {!Exhaustive.search} on the same lattice; [None] when no tiling
    fits. [explored] counts cost evaluations, typically orders of
    magnitude below the enumeration count. [lattice] defaults to
    [Divisors]. *)

val search_with_stats :
  ?lattice:Space.lattice -> ?seed:Schedule.t -> Matmul.t -> Buffer.t
  -> Exhaustive.result option * stats

val search_fused :
  ?lattice:Space.lattice -> ?seed:Fused.t -> Fused.pair -> Buffer.t
  -> Fused_search.result option
(** Best valid fused dataflow, identical to {!Fused_search.exhaustive}:
    the tree runs over producer tilings, each leaf replaying the
    exhaustive inner scan (producer orders with a non-redundant
    intermediate x compatible consumer completions) so within-tiling
    tie-breaks match arrival order exactly. The seed is used only as a
    pruning bound, never installed as a result. *)

val search_fused_with_stats :
  ?lattice:Space.lattice -> ?seed:Fused.t -> Fused.pair -> Buffer.t
  -> Fused_search.result option * stats
