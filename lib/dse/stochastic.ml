open Fusecu_tensor
open Fusecu_loopnest

type arrays = {
  ms : int array;
  ks : int array;
  ls : int array;
  orders : Order.t array;
}

let arrays lattice (op : Matmul.t) =
  { ms = Array.of_list (Space.tile_candidates lattice op.m);
    ks = Array.of_list (Space.tile_candidates lattice op.k);
    ls = Array.of_list (Space.tile_candidates lattice op.l);
    orders = Array.of_list Order.all }

let schedule_of arrs (op : Matmul.t) ~im ~ik ~il ~iorder =
  Schedule.make
    (Tiling.make op ~m:arrs.ms.(im) ~k:arrs.ks.(ik) ~l:arrs.ls.(il))
    arrs.orders.(iorder)

let nudge rng ~len i =
  if Random.State.bool rng then
    Fusecu_util.Arith.clamp ~lo:0 ~hi:(len - 1)
      (i + (if Random.State.bool rng then 1 else -1))
  else Random.State.int rng len

type ('a, 'score) tally = {
  mutable evaluations : int;
  mutable best : ('a * 'score) option;
}

let tally () = { evaluations = 0; best = None }

let tick t = t.evaluations <- t.evaluations + 1

let note t x score =
  match t.best with
  | Some (_, s) when s <= score -> ()
  | _ -> t.best <- Some (x, score)

let canonical ~oriented (op : Matmul.t) buf =
  if op.m <= op.l then oriented op buf
  else
    Option.map
      (fun (r : Exhaustive.result) ->
        let schedule = Schedule.transpose_ml op r.Exhaustive.schedule in
        { r with Exhaustive.schedule; cost = Cost.eval op schedule })
      (oriented (Matmul.transpose op) buf)
