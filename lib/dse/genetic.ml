open Fusecu_tensor
open Fusecu_loopnest

type params = {
  population : int;
  generations : int;
  mutation_rate : float;
  tournament : int;
  seed : int;
}

let default_params =
  { population = 48; generations = 60; mutation_rate = 0.25; tournament = 3;
    seed = 42 }

(* A genome indexes into per-dimension tile lattices plus the loop-order
   list; infeasible individuals (footprint over capacity) are penalized
   rather than repaired. *)
type genome = { im : int; ik : int; il : int; iorder : int }

(* The GA itself, on a fixed orientation. *)
let search_oriented ~params ~lattice (op : Matmul.t) buf =
  let ms = Array.of_list (Space.tile_candidates lattice op.m) in
  let ks = Array.of_list (Space.tile_candidates lattice op.k) in
  let ls = Array.of_list (Space.tile_candidates lattice op.l) in
  let orders = Array.of_list Order.all in
  let rng = Random.State.make [| params.seed; op.m; op.k; op.l |] in
  let random_genome () =
    { im = Random.State.int rng (Array.length ms);
      ik = Random.State.int rng (Array.length ks);
      il = Random.State.int rng (Array.length ls);
      iorder = Random.State.int rng (Array.length orders) }
  in
  let schedule_of g =
    Schedule.make (Tiling.make op ~m:ms.(g.im) ~k:ks.(g.ik) ~l:ls.(g.il))
      orders.(g.iorder)
  in
  let evaluations = ref 0 in
  let capacity = Buffer.elements buf in
  (* Lower is better; infeasible genomes are ranked by how far over
     capacity they are, always worse than any feasible genome. *)
  let fitness g =
    incr evaluations;
    let s = schedule_of g in
    let fp = Schedule.footprint s in
    if fp > capacity then (float_of_int (fp - capacity) *. 1e12, s, None)
    else begin
      let cost = Cost.eval op s in
      (float_of_int cost.Cost.total, s, Some cost)
    end
  in
  let pop = Array.init params.population (fun _ -> random_genome ()) in
  let scores = Array.map fitness pop in
  let best = ref None in
  let consider i =
    match scores.(i) with
    | _, s, Some cost -> (
      match !best with
      | Some (_, (bc : Cost.t)) when bc.total <= cost.Cost.total -> ()
      | _ -> best := Some (s, cost))
    | _, _, None -> ()
  in
  Array.iteri (fun i _ -> consider i) pop;
  let tournament () =
    let pick () = Random.State.int rng params.population in
    let rec loop best n =
      if n = 0 then best
      else begin
        let c = pick () in
        let fb, _, _ = scores.(best) and fc, _, _ = scores.(c) in
        loop (if fc < fb then c else best) (n - 1)
      end
    in
    pop.(loop (pick ()) (params.tournament - 1))
  in
  let crossover a b =
    let take x y = if Random.State.bool rng then x else y in
    { im = take a.im b.im; ik = take a.ik b.ik; il = take a.il b.il;
      iorder = take a.iorder b.iorder }
  in
  let mutate g =
    let jiggle len i =
      if Random.State.float rng 1.0 < params.mutation_rate then
        (* local move or random restart, half/half *)
        if Random.State.bool rng then
          Fusecu_util.Arith.clamp ~lo:0 ~hi:(len - 1)
            (i + (if Random.State.bool rng then 1 else -1))
        else Random.State.int rng len
      else i
    in
    { im = jiggle (Array.length ms) g.im;
      ik = jiggle (Array.length ks) g.ik;
      il = jiggle (Array.length ls) g.il;
      iorder = jiggle (Array.length orders) g.iorder }
  in
  for _gen = 1 to params.generations do
    let next =
      Array.init params.population (fun i ->
          if i = 0 then begin
            (* elitism: keep the best feasible genome seen in the pop *)
            let besti = ref 0 in
            Array.iteri
              (fun j _ ->
                let fj, _, _ = scores.(j) and fb, _, _ = scores.(!besti) in
                if fj < fb then besti := j)
              pop;
            pop.(!besti)
          end
          else mutate (crossover (tournament ()) (tournament ())))
    in
    Array.blit next 0 pop 0 params.population;
    Array.iteri (fun i g -> scores.(i) <- fitness g) pop;
    Array.iteri (fun i _ -> consider i) pop
  done;
  Option.map
    (fun (schedule, cost) -> { Exhaustive.schedule; cost; explored = !evaluations })
    !best

let search ?(params = default_params) ?(lattice = Space.Divisors) (op : Matmul.t)
    buf =
  (* As in {!Annealing}: evolve on the canonical M<->L orientation so
     transposed problems get bit-identical results. *)
  if op.m <= op.l then search_oriented ~params ~lattice op buf
  else
    Option.map
      (fun (r : Exhaustive.result) ->
        let schedule = Schedule.transpose_ml op r.schedule in
        { r with Exhaustive.schedule; cost = Cost.eval op schedule })
      (search_oriented ~params ~lattice (Matmul.transpose op) buf)
