open Fusecu_tensor
open Fusecu_loopnest

type params = {
  population : int;
  generations : int;
  mutation_rate : float;
  tournament : int;
  seed : int;
}

let default_params =
  { population = 48; generations = 60; mutation_rate = 0.25; tournament = 3;
    seed = 42 }

(* A genome indexes into per-dimension tile lattices plus the loop-order
   list; infeasible individuals (footprint over capacity) are penalized
   rather than repaired. *)
type genome = { im : int; ik : int; il : int; iorder : int }

(* The GA itself, on a fixed orientation. *)
let search_oriented ~params ~lattice (op : Matmul.t) buf =
  let arrs = Stochastic.arrays lattice op in
  let { Stochastic.ms; ks; ls; orders } = arrs in
  let rng = Random.State.make [| params.seed; op.m; op.k; op.l |] in
  let random_genome () =
    { im = Random.State.int rng (Array.length ms);
      ik = Random.State.int rng (Array.length ks);
      il = Random.State.int rng (Array.length ls);
      iorder = Random.State.int rng (Array.length orders) }
  in
  let schedule_of g =
    Stochastic.schedule_of arrs op ~im:g.im ~ik:g.ik ~il:g.il ~iorder:g.iorder
  in
  let tally = Stochastic.tally () in
  let capacity = Buffer.elements buf in
  (* Lower is better; infeasible genomes are ranked by how far over
     capacity they are, always worse than any feasible genome. *)
  let fitness g =
    Stochastic.tick tally;
    let s = schedule_of g in
    let fp = Schedule.footprint s in
    if fp > capacity then (float_of_int (fp - capacity) *. 1e12, s, None)
    else begin
      let cost = Cost.eval op s in
      (float_of_int cost.Cost.total, s, Some cost)
    end
  in
  let pop = Array.init params.population (fun _ -> random_genome ()) in
  let scores = Array.map fitness pop in
  let consider i =
    match scores.(i) with
    | _, s, Some cost -> Stochastic.note tally (s, cost) cost.Cost.total
    | _, _, None -> ()
  in
  Array.iteri (fun i _ -> consider i) pop;
  let tournament () =
    let pick () = Random.State.int rng params.population in
    let rec loop best n =
      if n = 0 then best
      else begin
        let c = pick () in
        let fb, _, _ = scores.(best) and fc, _, _ = scores.(c) in
        loop (if fc < fb then c else best) (n - 1)
      end
    in
    pop.(loop (pick ()) (params.tournament - 1))
  in
  let crossover a b =
    let take x y = if Random.State.bool rng then x else y in
    { im = take a.im b.im; ik = take a.ik b.ik; il = take a.il b.il;
      iorder = take a.iorder b.iorder }
  in
  let mutate g =
    let jiggle len i =
      if Random.State.float rng 1.0 < params.mutation_rate then
        Stochastic.nudge rng ~len i
      else i
    in
    { im = jiggle (Array.length ms) g.im;
      ik = jiggle (Array.length ks) g.ik;
      il = jiggle (Array.length ls) g.il;
      iorder = jiggle (Array.length orders) g.iorder }
  in
  for _gen = 1 to params.generations do
    let next =
      Array.init params.population (fun i ->
          if i = 0 then begin
            (* elitism: keep the best feasible genome seen in the pop *)
            let besti = ref 0 in
            Array.iteri
              (fun j _ ->
                let fj, _, _ = scores.(j) and fb, _, _ = scores.(!besti) in
                if fj < fb then besti := j)
              pop;
            pop.(!besti)
          end
          else mutate (crossover (tournament ()) (tournament ())))
    in
    Array.blit next 0 pop 0 params.population;
    Array.iteri (fun i g -> scores.(i) <- fitness g) pop;
    Array.iteri (fun i _ -> consider i) pop
  done;
  Option.map
    (fun ((schedule, cost), _) ->
      { Exhaustive.schedule; cost; explored = tally.Stochastic.evaluations })
    tally.Stochastic.best

let search ?(params = default_params) ?(lattice = Space.Divisors) op buf =
  (* As in {!Annealing}: evolve on the canonical M<->L orientation so
     transposed problems get bit-identical results. *)
  Stochastic.canonical ~oriented:(search_oriented ~params ~lattice) op buf
