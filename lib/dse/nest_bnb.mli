(** Exact branch-and-bound mapper over a projective nest's tiling
    lattice — {!Bnb} generalized beyond the 3-dim matmul space.

    Admissible cuts: monotone-footprint block-skips per level, and
    [Fusecu_nest.Bound.penalized] (the conflict-graph generalization of
    the pairwise-exclusion bound) at every partial assignment. Leaves
    replay [Fusecu_nest.Search.eval_tiling], so the result — schedule,
    cost, tiling index and order rank — is {e bit-for-bit} the one
    [Fusecu_nest.Search.exhaustive] returns on the same lattice and
    capacity; only the visit counters differ. An off-lattice or invalid
    [seed] is discarded rather than trusted. *)

open Fusecu_loopnest
open Fusecu_nest

val search :
  ?lattice:Search.lattice -> ?seed:Nest.schedule -> Nest.t -> Buffer.t ->
  Search.result option

val search_with_stats :
  ?lattice:Search.lattice -> ?seed:Nest.schedule -> Nest.t -> Buffer.t ->
  Search.result option * Bnb.stats
(** [stats.explored] counts cost evaluations (matching
    [result.evaluated]); [stats.nodes] counts expanded partial
    assignments. *)
