open Fusecu_tensor
open Fusecu_loopnest

type params = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
}

let default_params =
  { iterations = 4000; initial_temperature = 0.5; cooling = 0.9985; seed = 42 }

type state = { im : int; ik : int; il : int; iorder : int }

(* The walk itself, on a fixed orientation. *)
let search_oriented ~params ~lattice (op : Matmul.t) buf =
  let arrs = Stochastic.arrays lattice op in
  let { Stochastic.ms; ks; ls; orders } = arrs in
  let rng = Random.State.make [| params.seed; op.m; op.k; op.l; 17 |] in
  let capacity = Buffer.elements buf in
  let schedule_of s =
    Stochastic.schedule_of arrs op ~im:s.im ~ik:s.ik ~il:s.il ~iorder:s.iorder
  in
  let tally = Stochastic.tally () in
  (* objective in units of the ideal lower bound; infeasible states get
     a capacity-overshoot penalty so the walk can cross narrow ridges *)
  let ideal = float_of_int (Matmul.ideal_ma op) in
  let objective s =
    Stochastic.tick tally;
    let sched = schedule_of s in
    let over = Schedule.footprint sched - capacity in
    if over > 0 then 1e6 +. float_of_int over
    else float_of_int (Cost.eval op sched).Cost.total /. ideal
  in
  let neighbour s =
    let bump len i = if len = 1 then i else Stochastic.nudge rng ~len i in
    match Random.State.int rng 4 with
    | 0 -> { s with im = bump (Array.length ms) s.im }
    | 1 -> { s with ik = bump (Array.length ks) s.ik }
    | 2 -> { s with il = bump (Array.length ls) s.il }
    | _ -> { s with iorder = Random.State.int rng (Array.length orders) }
  in
  let current =
    ref
      { im = Random.State.int rng (Array.length ms);
        ik = Random.State.int rng (Array.length ks);
        il = Random.State.int rng (Array.length ls);
        iorder = Random.State.int rng (Array.length orders) }
  in
  let current_cost = ref (objective !current) in
  let consider s cost = if cost < 1e6 then Stochastic.note tally s cost in
  consider !current !current_cost;
  let temperature = ref params.initial_temperature in
  for _ = 1 to params.iterations do
    let candidate = neighbour !current in
    let cost = objective candidate in
    let accept =
      cost <= !current_cost
      || Random.State.float rng 1.0
         < exp ((!current_cost -. cost) /. Float.max 1e-9 !temperature)
    in
    if accept then begin
      current := candidate;
      current_cost := cost
    end;
    consider candidate cost;
    temperature := !temperature *. params.cooling
  done;
  Option.map
    (fun (s, _) ->
      let schedule = schedule_of s in
      { Exhaustive.schedule;
        cost = Cost.eval op schedule;
        explored = tally.Stochastic.evaluations })
    tally.Stochastic.best

let search ?(params = default_params) ?(lattice = Space.Divisors) op buf =
  (* Memory behaviour is symmetric under M<->L transposition, so run
     the (seeded) walk on the canonical orientation and map the result
     back: an operator and its transpose then get bit-identical
     outcomes instead of two unrelated random walks. *)
  Stochastic.canonical ~oriented:(search_oriented ~params ~lattice) op buf
