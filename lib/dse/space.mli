(** Design-space definition for the search-based baseline optimizer (the
    DAT [15] stand-in): which tile sizes and loop orders a search may
    visit.

    The space is enumerated {e streamingly}: nothing is materialized
    unless a caller explicitly asks for a list. A {!compile}d space
    assigns every point a {e raw index} in
    [\[0, raw_size)] — tilings ordered as the nested
    [m x k x l] candidate product (l fastest), each tiling followed by
    its six loop orders — so the space can be split into index ranges
    and enumerated chunk-by-chunk (see {!Fusecu_util.Pool}) without ever
    listing it. Infeasible points (footprint over capacity) are skipped
    inline during enumeration; raw indices are stable regardless of the
    buffer. *)

open Fusecu_tensor
open Fusecu_loopnest

type lattice =
  | All  (** every integer tile size in [\[1, dim\]] — exact but only
             tractable for small operators *)
  | Divisors  (** divisors of the dimension *)
  | Pow2  (** powers of two plus the full dimension *)

val tile_candidates : lattice -> int -> int list
(** Candidate tile sizes for a dimension of the given size, increasing,
    always containing 1 and the dimension itself. *)

(** {1 Compiled spaces — streaming, partitionable} *)

type t
(** A compiled space: per-dimension candidate arrays plus the buffer
    capacity, ready for index-range enumeration. *)

val compile : lattice -> Matmul.t -> Buffer.t -> t

val capacity : t -> int
(** Buffer capacity (elements) the space was compiled against. *)

val operator : t -> Matmul.t

val candidates : t -> Dim.t -> int array
(** The compiled candidate-tile array for a dimension, increasing. The
    returned array is shared with the space, not a copy — callers must
    not mutate it. *)

val raw_tilings : t -> int
(** Number of raw tiling indices ([|ms| * |ks| * |ls|], feasible or
    not). *)

val raw_size : t -> int
(** Number of raw schedule indices ([6 x raw_tilings]). *)

val fold_tiling_range :
  t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> Tiling.t -> 'a) -> 'a
(** Fold over the {e feasible} tilings with raw index in [\[lo, hi)]
    (clamped to the space), in increasing index order. The footprint
    filter runs on raw integers; a [Tiling.t] is built only for feasible
    points. *)

val fold_range :
  t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> Schedule.t -> 'a) -> 'a
(** Fold over the feasible schedules with raw index in [\[lo, hi)]
    (clamped), in increasing index order; each feasible tiling is
    decoded once for its six contiguous orders. Folding
    [\[0, raw_size)] visits exactly the schedules {!schedules} lists,
    in the same order. *)

(** {1 Whole-space streaming} *)

val fold : lattice -> Matmul.t -> Buffer.t -> init:'a -> f:('a -> Schedule.t -> 'a) -> 'a
(** Streaming fold over the full feasible space, enumeration order. *)

val iter : lattice -> Matmul.t -> Buffer.t -> (Schedule.t -> unit) -> unit

(** {1 Materialized views (small spaces / tests)} *)

val tilings : lattice -> Matmul.t -> Buffer.t -> Tiling.t list
(** Every candidate tiling whose footprint fits the buffer. *)

val schedules : lattice -> Matmul.t -> Buffer.t -> Schedule.t list
(** The full search space: feasible tilings x all six loop orders. *)

val size : lattice -> Matmul.t -> Buffer.t -> int
(** Number of schedules {!schedules} would enumerate — computed from the
    per-dimension candidate lists and the footprint bound (binary search
    over the largest feasible [l] per [(m, k)]), without enumerating
    the space. *)
