open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type lattice = All | Divisors | Pow2

let tile_candidates lattice size =
  match lattice with
  | All -> Arith.range 1 size
  | Divisors -> Arith.divisors size
  | Pow2 -> Arith.dedup_sorted (size :: Arith.pow2s_upto size)

let n_orders = List.length Order.all

type t = {
  op : Matmul.t;
  capacity : int;
  ms : int array;  (* increasing *)
  ks : int array;
  ls : int array;
  orders : Order.t array;
}

let compile lattice (op : Matmul.t) buf =
  { op;
    capacity = Buffer.elements buf;
    ms = Array.of_list (tile_candidates lattice op.m);
    ks = Array.of_list (tile_candidates lattice op.k);
    ls = Array.of_list (tile_candidates lattice op.l);
    orders = Array.of_list Order.all }

let capacity t = t.capacity

let operator t = t.op

let candidates t = function
  | Dim.M -> t.ms
  | Dim.K -> t.ks
  | Dim.L -> t.ls

let raw_tilings t = Array.length t.ms * Array.length t.ks * Array.length t.ls

let raw_size t = n_orders * raw_tilings t

(* Decoding a raw tiling index walks ls fastest, then ks, then ms — the
   same order the seed's nested [concat_map] produced, so streaming
   first-seen semantics match the old list-based enumeration. Because
   each [(m, k)] block walks [l] in increasing order and the footprint
   is monotone in [l], the first infeasible point of a block rules out
   the block's remainder: the scan jumps straight to the next block, so
   a sweep costs O(feasible points + blocks), not O(raw points). *)
let fold_tiling_range t ~lo ~hi ~init ~f =
  let nl = Array.length t.ls and nk = Array.length t.ks in
  let lo = max 0 lo and hi = min (raw_tilings t) hi in
  let acc = ref init in
  let i = ref lo in
  while !i < hi do
    let il = !i mod nl in
    let j = !i / nl in
    let ik = j mod nk in
    let im = j / nk in
    let m = t.ms.(im) and k = t.ks.(ik) and l = t.ls.(il) in
    if (m * k) + ((m + k) * l) <= t.capacity then begin
      acc := f !acc !i (Tiling.make t.op ~m ~k ~l);
      incr i
    end
    else i := (j + 1) * nl (* skip the rest of this (m, k) block *)
  done;
  !acc

let fold_range t ~lo ~hi ~init ~f =
  let nl = Array.length t.ls and nk = Array.length t.ks in
  let lo = max 0 lo and hi = min (raw_size t) hi in
  let acc = ref init in
  let i = ref lo in
  (* Group by tiling so each feasible tiling is decoded (and allocated)
     once for its up-to-six contiguous order indices; infeasible (m, k)
     blocks are skipped wholesale as in [fold_tiling_range]. *)
  while !i < hi do
    let ti = !i / n_orders in
    let o_lo = !i - (ti * n_orders) in
    let o_hi = min n_orders (o_lo + (hi - !i)) in
    let il = ti mod nl in
    let j = ti / nl in
    let ik = j mod nk in
    let im = j / nk in
    let m = t.ms.(im) and k = t.ks.(ik) and l = t.ls.(il) in
    if (m * k) + ((m + k) * l) <= t.capacity then begin
      let tiling = Tiling.make t.op ~m ~k ~l in
      for o = o_lo to o_hi - 1 do
        acc := f !acc ((ti * n_orders) + o) (Schedule.make tiling t.orders.(o))
      done;
      i := (ti * n_orders) + o_hi
    end
    else i := (j + 1) * nl * n_orders
  done;
  !acc

let fold lattice op buf ~init ~f =
  let t = compile lattice op buf in
  fold_range t ~lo:0 ~hi:(raw_size t) ~init ~f:(fun acc _ s -> f acc s)

let iter lattice op buf f = fold lattice op buf ~init:() ~f:(fun () s -> f s)

let tilings lattice op buf =
  let t = compile lattice op buf in
  List.rev
    (fold_tiling_range t ~lo:0 ~hi:(raw_tilings t) ~init:[]
       ~f:(fun acc _ tiling -> tiling :: acc))

let schedules lattice op buf =
  List.rev (fold lattice op buf ~init:[] ~f:(fun acc s -> s :: acc))

(* Number of elements of the (increasing) array <= bound. *)
let count_le arr bound =
  let n = Array.length arr in
  if n = 0 || bound < arr.(0) then 0
  else begin
    (* invariant: arr.(lo) <= bound < arr.(hi) (hi = n treated as inf) *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) <= bound then lo := mid else hi := mid
    done;
    !lo + 1
  end

let size_compiled t =
  (* footprint m*k + l*(m+k) <= capacity  <=>  l <= (capacity - m*k)/(m+k),
     so per (m, k) the feasible l's are a prefix of the sorted candidate
     list: count it with a binary search instead of enumerating. *)
  let total = ref 0 in
  Array.iter
    (fun m ->
      Array.iter
        (fun k ->
          let rem = t.capacity - (m * k) in
          if rem >= m + k then total := !total + count_le t.ls (rem / (m + k)))
        t.ks)
    t.ms;
  n_orders * !total

let size lattice op buf = size_compiled (compile lattice op buf)
