open Fusecu_loopnest
open Fusecu_core
open Fusecu_util

type result = { schedule : Schedule.t; cost : Cost.t; explored : int }

(* Partial bests carry the raw space index of the schedule; merging in
   ascending chunk order with a (cost, index) comparison reproduces the
   sequential "first strict minimum wins" rule exactly, so parallel
   results are bit-identical to sequential ones. *)
let merge_best a b =
  match (a, b) with
  | Some (_, (ca : Cost.t), ia), Some (_, (cb : Cost.t), ib) ->
    if (ca.total, ia) <= (cb.total, ib) then a else b
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let search ?(lattice = Space.Divisors) ?pool op buf =
  Trace.with_span ~cat:"enumerate" "exhaustive.search" @@ fun () ->
  let space = Space.compile lattice op buf in
  let eval_range lo hi =
    Trace.with_span ~cat:"evaluate"
      ~args:[ ("lo", Json.Int lo); ("hi", Json.Int hi) ]
      "exhaustive.chunk"
    @@ fun () ->
    Space.fold_range space ~lo ~hi ~init:(None, 0)
      ~f:(fun (best, n) idx schedule ->
        let cost = Cost.eval op schedule in
        let best =
          match best with
          | Some (_, (bc : Cost.t), _) when bc.total <= cost.Cost.total -> best
          | _ -> Some (schedule, cost, idx)
        in
        (best, n + 1))
  in
  let merge (b1, n1) (b2, n2) =
    Trace.with_span ~cat:"merge" "exhaustive.merge" @@ fun () ->
    (merge_best b1 b2, n1 + n2)
  in
  let best, explored =
    Pool.parallel_fold ?pool ~label:"exhaustive.search" ~lo:0
      ~hi:(Space.raw_size space) ~fold:eval_range ~merge (None, 0)
  in
  Option.map (fun (schedule, cost, _) -> { schedule; cost; explored }) best

let best_per_class ?(lattice = Space.Divisors) ?pool op buf =
  Trace.with_span ~cat:"enumerate" "exhaustive.best_per_class" @@ fun () ->
  let space = Space.compile lattice op buf in
  let eval_range lo hi =
    Trace.with_span ~cat:"evaluate"
      ~args:[ ("lo", Json.Int lo); ("hi", Json.Int hi) ]
      "best_per_class.chunk"
    @@ fun () ->
    let table = Hashtbl.create 3 in
    let explored =
      Space.fold_range space ~lo ~hi ~init:0 ~f:(fun n idx schedule ->
          let cost = Cost.eval op schedule in
          let cls = Nra.class_of (Nra.classify op schedule) in
          (match Hashtbl.find_opt table cls with
          | Some (_, (bc : Cost.t), _) when bc.total <= cost.Cost.total -> ()
          | _ -> Hashtbl.replace table cls (schedule, cost, idx));
          n + 1)
    in
    (table, explored)
  in
  let merge (t1, n1) (t2, n2) =
    Trace.with_span ~cat:"merge" "best_per_class.merge" @@ fun () ->
    (* chunks arrive in ascending index order: a right-hand entry
       displaces a left-hand one only on strictly lower cost, matching
       the sequential first-seen rule *)
    Hashtbl.iter
      (fun cls ((_, (c2 : Cost.t), i2) as entry) ->
        match Hashtbl.find_opt t1 cls with
        | None -> Hashtbl.replace t1 cls entry
        | Some (_, (c1 : Cost.t), i1) ->
          if (c2.total, i2) < (c1.total, i1) then Hashtbl.replace t1 cls entry)
      t2;
    (t1, n1 + n2)
  in
  let table, explored =
    Pool.parallel_fold ?pool ~label:"exhaustive.best_per_class" ~lo:0
      ~hi:(Space.raw_size space) ~fold:eval_range ~merge
      (Hashtbl.create 3, 0)
  in
  List.filter_map
    (fun cls ->
      Option.map
        (fun (schedule, cost, _) -> (cls, { schedule; cost; explored }))
        (Hashtbl.find_opt table cls))
    Nra.all
