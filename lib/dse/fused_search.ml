open Fusecu_tensor
open Fusecu_loopnest

type result = { fused : Fused.t; traffic : int; explored : int }

let consumer_candidates lattice (pair : Fused.pair) (producer : Schedule.t) buf =
  let { Fused.op2; _ } = pair in
  let tm = Tiling.get producer.tiling Dim.M in
  let tk = Tiling.get producer.tiling Dim.L in
  List.concat_map
    (fun tl ->
      let tiling = Tiling.make op2 ~m:tm ~k:tk ~l:tl in
      if Tiling.footprint tiling > Buffer.elements buf then []
      else List.map (Schedule.make tiling) Order.all)
    (Space.tile_candidates lattice op2.l)

(* Parallelized over the producer tiling index range: each chunk keeps
   its own first-seen minimum (tagged with the producer tiling's raw
   index) and chunks merge in ascending order with a (traffic, index)
   tie-break — bit-identical to the sequential scan. *)
let exhaustive ?(lattice = Space.Divisors) ?pool (pair : Fused.pair) buf =
  Fusecu_util.Trace.with_span ~cat:"enumerate" "fused_search.exhaustive"
  @@ fun () ->
  let { Fused.op1; _ } = pair in
  let space = Space.compile lattice op1 buf in
  let eval_range lo hi =
    Fusecu_util.Trace.with_span ~cat:"evaluate"
      ~args:
        [ ("lo", Fusecu_util.Json.Int lo); ("hi", Fusecu_util.Json.Int hi) ]
      "fused_search.chunk"
    @@ fun () ->
    let explored = ref 0 in
    let best = ref None in
    let consider idx fused =
      incr explored;
      match Fused.eval pair fused buf with
      | Error _ -> ()
      | Ok traffic -> (
        match !best with
        | Some (_, bt, _) when bt <= traffic -> ()
        | _ -> best := Some (fused, traffic, idx))
    in
    Space.fold_tiling_range space ~lo ~hi ~init:() ~f:(fun () idx tiling ->
        List.iter
          (fun o1 ->
            let producer = Schedule.make tiling o1 in
            if Cost.is_nra op1 producer Operand.C then
              List.iter
                (fun consumer -> consider idx { Fused.producer; consumer })
                (consumer_candidates lattice pair producer buf))
          Order.all);
    (!best, !explored)
  in
  let merge_best a b =
    match (a, b) with
    | Some (_, ta, ia), Some (_, tb, ib) ->
      if (ta, ia) <= (tb, ib) then a else b
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let merge (b1, n1) (b2, n2) =
    Fusecu_util.Trace.with_span ~cat:"merge" "fused_search.merge" @@ fun () ->
    (merge_best b1 b2, n1 + n2)
  in
  let best, explored =
    Fusecu_util.Pool.parallel_fold ?pool ~label:"fused_search.exhaustive"
      ~lo:0 ~hi:(Space.raw_tilings space) ~fold:eval_range ~merge (None, 0)
  in
  Option.map (fun (fused, traffic, _) -> { fused; traffic; explored }) best

type genome = {
  im : int;
  ik : int;
  il : int;
  io1 : int;
  il2 : int;
  io2 : int;
}

let genetic ?(params = Genetic.default_params) ?(lattice = Space.Divisors)
    (pair : Fused.pair) buf =
  let { Fused.op1; op2 } = pair in
  let ms = Array.of_list (Space.tile_candidates lattice op1.m) in
  let ks = Array.of_list (Space.tile_candidates lattice op1.k) in
  let ls = Array.of_list (Space.tile_candidates lattice op1.l) in
  let l2s = Array.of_list (Space.tile_candidates lattice op2.l) in
  let orders = Array.of_list Order.all in
  let rng = Random.State.make [| params.seed; op1.m; op1.k; op1.l; op2.l |] in
  let random_genome () =
    { im = Random.State.int rng (Array.length ms);
      ik = Random.State.int rng (Array.length ks);
      il = Random.State.int rng (Array.length ls);
      io1 = Random.State.int rng (Array.length orders);
      il2 = Random.State.int rng (Array.length l2s);
      io2 = Random.State.int rng (Array.length orders) }
  in
  let fused_of g =
    let producer =
      Schedule.make (Tiling.make op1 ~m:ms.(g.im) ~k:ks.(g.ik) ~l:ls.(g.il))
        orders.(g.io1)
    in
    let consumer =
      Schedule.make
        (Tiling.make op2 ~m:ms.(g.im) ~k:ls.(g.il) ~l:l2s.(g.il2))
        orders.(g.io2)
    in
    { Fused.producer; consumer }
  in
  let tally = Stochastic.tally () in
  let fitness g =
    Stochastic.tick tally;
    let fused = fused_of g in
    match Fused.eval pair fused buf with
    | Error _ -> Float.max_float
    | Ok traffic ->
      Stochastic.note tally fused traffic;
      float_of_int traffic
  in
  let pop = Array.init params.population (fun _ -> random_genome ()) in
  let scores = Array.map fitness pop in
  let tournament () =
    let pick () = Random.State.int rng params.population in
    let rec loop bi n =
      if n = 0 then bi
      else begin
        let c = pick () in
        loop (if scores.(c) < scores.(bi) then c else bi) (n - 1)
      end
    in
    pop.(loop (pick ()) (params.tournament - 1))
  in
  let crossover a b =
    let take x y = if Random.State.bool rng then x else y in
    { im = take a.im b.im; ik = take a.ik b.ik; il = take a.il b.il;
      io1 = take a.io1 b.io1; il2 = take a.il2 b.il2; io2 = take a.io2 b.io2 }
  in
  let mutate g =
    let jiggle len i =
      if Random.State.float rng 1.0 < params.mutation_rate then
        Stochastic.nudge rng ~len i
      else i
    in
    { im = jiggle (Array.length ms) g.im;
      ik = jiggle (Array.length ks) g.ik;
      il = jiggle (Array.length ls) g.il;
      io1 = jiggle (Array.length orders) g.io1;
      il2 = jiggle (Array.length l2s) g.il2;
      io2 = jiggle (Array.length orders) g.io2 }
  in
  for _gen = 1 to params.generations do
    let next =
      Array.init params.population (fun i ->
          if i = 0 then begin
            let bi = ref 0 in
            Array.iteri (fun j _ -> if scores.(j) < scores.(!bi) then bi := j) pop;
            pop.(!bi)
          end
          else mutate (crossover (tournament ()) (tournament ())))
    in
    Array.blit next 0 pop 0 params.population;
    Array.iteri (fun i g -> scores.(i) <- fitness g) pop
  done;
  Option.map
    (fun (fused, traffic) ->
      { fused; traffic; explored = tally.Stochastic.evaluations })
    tally.Stochastic.best

type verdict = {
  fused_best : result option;
  unfused_traffic : int option;
  best_traffic : int option;
  fusion_wins : bool;
}

let decide ?(lattice = Space.Divisors) ?pool (pair : Fused.pair) buf =
  let fused_best = exhaustive ~lattice ?pool pair buf in
  let unfused_traffic =
    match
      (Exhaustive.search ~lattice ?pool pair.Fused.op1 buf,
       Exhaustive.search ~lattice ?pool pair.Fused.op2 buf)
    with
    | Some r1, Some r2 -> Some (r1.cost.Cost.total + r2.cost.Cost.total)
    | _ -> None
  in
  let best_traffic =
    match (fused_best, unfused_traffic) with
    | Some f, Some u -> Some (min f.traffic u)
    | Some f, None -> Some f.traffic
    | None, Some u -> Some u
    | None, None -> None
  in
  let fusion_wins =
    match (fused_best, unfused_traffic) with
    | Some f, Some u -> f.traffic < u
    | Some _, None -> true
    | _ -> false
  in
  { fused_best; unfused_traffic; best_traffic; fusion_wins }
