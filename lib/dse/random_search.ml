open Fusecu_tensor
open Fusecu_loopnest

let search_oriented ~samples ~seed ~lattice (op : Matmul.t) buf =
  let { Stochastic.ms; ks; ls; orders } = Stochastic.arrays lattice op in
  let rng = Random.State.make [| seed; op.m; op.k; op.l; 23 |] in
  let capacity = Buffer.elements buf in
  let tally = Stochastic.tally () in
  for _ = 1 to samples do
    let tiling =
      Tiling.make op
        ~m:ms.(Random.State.int rng (Array.length ms))
        ~k:ks.(Random.State.int rng (Array.length ks))
        ~l:ls.(Random.State.int rng (Array.length ls))
    in
    if Tiling.footprint tiling <= capacity then begin
      let schedule =
        Schedule.make tiling orders.(Random.State.int rng (Array.length orders))
      in
      let cost = Cost.eval op schedule in
      Stochastic.note tally (schedule, cost) cost.Cost.total
    end
  done;
  Option.map
    (fun ((schedule, cost), _) -> { Exhaustive.schedule; cost; explored = samples })
    tally.Stochastic.best

let search ?(samples = 2000) ?(seed = 42) ?(lattice = Space.Divisors) op buf =
  (* As in {!Annealing}: sample on the canonical M<->L orientation so
     transposed problems get bit-identical results. *)
  Stochastic.canonical ~oriented:(search_oriented ~samples ~seed ~lattice) op buf
