open Fusecu_tensor
open Fusecu_loopnest

let search_oriented ~samples ~seed ~lattice (op : Matmul.t) buf =
  let ms = Array.of_list (Space.tile_candidates lattice op.m) in
  let ks = Array.of_list (Space.tile_candidates lattice op.k) in
  let ls = Array.of_list (Space.tile_candidates lattice op.l) in
  let orders = Array.of_list Order.all in
  let rng = Random.State.make [| seed; op.m; op.k; op.l; 23 |] in
  let capacity = Buffer.elements buf in
  let best = ref None in
  for _ = 1 to samples do
    let tiling =
      Tiling.make op
        ~m:ms.(Random.State.int rng (Array.length ms))
        ~k:ks.(Random.State.int rng (Array.length ks))
        ~l:ls.(Random.State.int rng (Array.length ls))
    in
    if Tiling.footprint tiling <= capacity then begin
      let schedule =
        Schedule.make tiling orders.(Random.State.int rng (Array.length orders))
      in
      let cost = Cost.eval op schedule in
      match !best with
      | Some (_, (bc : Cost.t)) when bc.total <= cost.Cost.total -> ()
      | _ -> best := Some (schedule, cost)
    end
  done;
  Option.map
    (fun (schedule, cost) -> { Exhaustive.schedule; cost; explored = samples })
    !best

let search ?(samples = 2000) ?(seed = 42) ?(lattice = Space.Divisors)
    (op : Matmul.t) buf =
  (* As in {!Annealing}: sample on the canonical M<->L orientation so
     transposed problems get bit-identical results. *)
  if op.m <= op.l then search_oriented ~samples ~seed ~lattice op buf
  else
    Option.map
      (fun (r : Exhaustive.result) ->
        let schedule = Schedule.transpose_ml op r.schedule in
        { r with Exhaustive.schedule; cost = Cost.eval op schedule })
      (search_oriented ~samples ~seed ~lattice (Matmul.transpose op) buf)
