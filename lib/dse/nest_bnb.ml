open Fusecu_loopnest
open Fusecu_util
open Fusecu_nest

(* Branch-and-bound over a nest's tiling lattice — Bnb generalized from
   the 3-dim matmul space to arbitrary-rank projective nests. The tree
   assigns axes depth-first in decreasing traffic impact, with the same
   two admissible devices:

   - monotone-footprint cuts (candidates increasing, unassigned axes at
     tile 1, first overflow rules out the rest of the level);
   - [Nest.Bound.penalized] at every partial assignment, fed per-axis
     trip-count lower bounds (exact trips once an axis is assigned).

   Leaves replay [Search.eval_tiling], so the incumbent ordering is
   exactly the exhaustive scan's (total, tiling index, order rank)
   first-seen minimum and the returned result is bit-identical to
   [Search.exhaustive_in] on the same space (locked by test_dse.ml). *)

type counters = {
  mutable c_nodes : int;
  mutable c_explored : int;
  mutable c_evaluated : int;
  mutable c_pruned_bound : int;
  mutable c_pruned_infeasible : int;
}

let search_with_stats ?(lattice = Search.Divisors) ?seed nest buf =
  Trace.with_span ~cat:"bnb" "nest_bnb.search" @@ fun () ->
  let capacity = Buffer.elements buf in
  let sp = Search.compile ~lattice nest ~capacity in
  let n = Nest.rank nest in
  let c =
    { c_nodes = 0;
      c_explored = 0;
      c_evaluated = 0;
      c_pruned_bound = 0;
      c_pruned_infeasible = 0 }
  in
  (* Assigned candidate index per axis, -1 = unassigned; [tiles] mirrors
     it with unassigned axes at 1 so [Nest.footprint_tiles] sees the
     minimal completion. *)
  let idx = Array.make n (-1) in
  let tiles = Array.make n 1 in
  (* largest candidate index of [axis] whose footprint still fits with
     every other open axis at tile 1, or -1 (binary search on the
     monotone footprint) *)
  let max_feasible_cand axis =
    let a = Search.candidates sp axis in
    let fits j =
      tiles.(axis) <- a.(j);
      let fp = Nest.footprint_tiles nest tiles in
      tiles.(axis) <- 1;
      fp <= capacity
    in
    if Array.length a = 0 || not (fits 0) then -1
    else begin
      let lo = ref 0 and hi = ref (Array.length a) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if fits mid then lo := mid else hi := mid
      done;
      !lo
    end
  in
  (* Fewest trips the axis can make anywhere in this subtree. *)
  let trips_lb axis =
    let e = nest.Nest.extents.(axis) in
    if idx.(axis) >= 0 then Arith.ceil_div e tiles.(axis)
    else begin
      let j = max_feasible_cand axis in
      if j < 0 then e
      else Arith.ceil_div e (Search.candidates sp axis).(j)
    end
  in
  let lower_bound () =
    Bound.penalized nest ~trips:(Array.init n trips_lb)
  in
  (* Incumbent in Search's (cost, tiling index, order rank, schedule)
     shape so leaves share [Search.eval_tiling]'s exact tie-break. *)
  let best = ref None in
  (match seed with
  | None -> ()
  | Some (s : Nest.schedule) ->
    (* Only an in-space seed may become the incumbent: every tile on
       the lattice, the order one of the active-perm completions, the
       footprint within capacity, internals revisit-free. *)
    let cand_idx = Array.make n (-1) in
    let on_lattice =
      Array.for_all (fun i -> i >= 0)
        (Array.mapi
           (fun i tile ->
             let a = Search.candidates sp i in
             let rec find j =
               if j >= Array.length a then -1
               else if a.(j) = tile then j
               else find (j + 1)
             in
             let j = find 0 in
             cand_idx.(i) <- j;
             j)
           s.Nest.tiles)
    in
    if on_lattice && Buffer.fits buf (Nest.footprint nest s) && Nest.valid nest s
    then begin
      let trips = Array.init n (fun i -> Nest.trips nest s i) in
      let rec rank_of r = function
        | [] -> None
        | o :: tl -> if o = s.Nest.order then Some r else rank_of (r + 1) tl
      in
      match rank_of 0 (Search.orders sp ~trips) with
      | None -> ()
      | Some rank ->
        let cost = Nest.eval nest s in
        c.c_evaluated <- c.c_evaluated + 1;
        best := Some (cost, Search.tiling_index sp cand_idx, rank, s)
    end);
  (* Minimum tiling index of the subtree: unassigned axes at candidate
     0. Any completion indexes at or beyond it, so at equal bound the
     subtree cannot beat an incumbent with a smaller index. *)
  let min_subtree_ti () =
    let is = Array.map (fun j -> if j < 0 then 0 else j) idx in
    Search.tiling_index sp is
  in
  let prunable lb =
    match !best with
    | None -> false
    | Some ((bc : Nest.cost), bti, _, _) ->
      lb > bc.Nest.total || (lb = bc.Nest.total && min_subtree_ti () > bti)
  in
  (* impact = external bytes an axis touches; assigning high-impact
     axes first makes partial bounds tight early *)
  let impact axis =
    List.fold_left
      (fun acc x ->
        if List.mem axis (Nest.used_axes x) then acc + Nest.tensor_size nest x
        else acc)
      0 (Nest.externals nest)
  in
  let axes_by_impact =
    Array.of_list
      (List.stable_sort
         (fun a b -> compare (impact b) (impact a))
         (List.init n Fun.id))
  in
  let rec node depth =
    if depth = n then begin
      c.c_explored <- c.c_explored + 1;
      c.c_evaluated <-
        c.c_evaluated + Search.eval_tiling sp ~idxs:idx ~tiles best
    end
    else begin
      let axis = axes_by_impact.(depth) in
      let a = Search.candidates sp axis in
      let len = Array.length a in
      let j = ref 0 and live = ref true in
      while !live && !j < len do
        idx.(axis) <- !j;
        tiles.(axis) <- a.(!j);
        if Nest.footprint_tiles nest tiles > capacity then begin
          c.c_pruned_infeasible <- c.c_pruned_infeasible + (len - !j);
          live := false
        end
        else if prunable (lower_bound ()) then
          c.c_pruned_bound <- c.c_pruned_bound + 1
        else begin
          c.c_nodes <- c.c_nodes + 1;
          node (depth + 1)
        end;
        incr j
      done;
      idx.(axis) <- -1;
      tiles.(axis) <- 1
    end
  in
  node 0;
  ( Option.map
      (fun (cost, ti, rank, schedule) ->
        { Search.schedule;
          cost;
          tiling_index = ti;
          order_rank = rank;
          explored = c.c_explored;
          evaluated = c.c_evaluated })
      !best,
    { Bnb.nodes = c.c_nodes;
      explored = c.c_evaluated;
      pruned_bound = c.c_pruned_bound;
      pruned_infeasible = c.c_pruned_infeasible } )

let search ?lattice ?seed nest buf =
  fst (search_with_stats ?lattice ?seed nest buf)
