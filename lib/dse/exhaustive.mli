(** Exhaustive intra-operator design-space exploration. Ground truth for
    validating the principles: on spaces small enough to enumerate, the
    principle-built schedule must match the searched optimum.

    The space is streamed ({!Space.fold_range}) and split across the
    domains of a {!Fusecu_util.Pool}: each domain keeps its own partial
    best and the partials are merged in ascending index order with a
    deterministic (cost, index) tie-break, so the parallel result —
    schedule, cost and [explored] count — is bit-identical to the
    sequential one. Pass [~pool:Fusecu_util.Pool.sequential] to force
    the single-domain path; by default the global pool
    ([FUSECU_DOMAINS]) is used. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  explored : int;  (** schedules evaluated *)
}

val search :
  ?lattice:Space.lattice -> ?pool:Fusecu_util.Pool.t -> Matmul.t -> Buffer.t
  -> result option
(** Best (minimum-traffic) schedule in the space; [None] when nothing
    fits the buffer. [lattice] defaults to [Divisors]. *)

val best_per_class :
  ?lattice:Space.lattice -> ?pool:Fusecu_util.Pool.t -> Matmul.t -> Buffer.t
  -> (Nra.t * result) list
(** Best schedule within each NRA class present in the space — used to
    verify the buffer-regime table of Sec. III-A4. *)
