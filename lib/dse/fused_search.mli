(** Search-based inter-operator (fusion) optimization — the fusion half
    of the DAT baseline. Searches the joint space of producer/consumer
    schedules subject to the fusibility constraints of
    {!Fusecu_loopnest.Fused}. *)

open Fusecu_loopnest

type result = {
  fused : Fused.t;
  traffic : int;
  explored : int;  (** candidate combinations evaluated *)
}

val consumer_candidates :
  Space.lattice -> Fused.pair -> Schedule.t -> Buffer.t -> Schedule.t list
(** Every consumer schedule compatible with the given producer: the
    producer's M and L tiles carried over, each lattice candidate for
    the consumer's remaining L dimension (footprint permitting) crossed
    with all six orders, in enumeration order. Shared with {!Bnb} so
    both searches scan identical candidates in identical order. *)

val exhaustive :
  ?lattice:Space.lattice -> ?pool:Fusecu_util.Pool.t -> Fused.pair -> Buffer.t
  -> result option
(** Best valid fused dataflow by full enumeration of producer schedules
    (with a non-redundant intermediate) joined with every compatible
    consumer completion. [None] when no valid fused dataflow exists.
    [lattice] defaults to [Divisors]. The producer tiling range is
    split across the pool's domains; results are bit-identical to the
    sequential scan (deterministic ordered merge). *)

val genetic : ?params:Genetic.params -> ?lattice:Space.lattice -> Fused.pair
  -> Buffer.t -> result option
(** GA over the joint genome (producer tiling and order, consumer
    remaining tile and order). *)

type verdict = {
  fused_best : result option;
  unfused_traffic : int option;  (** sum of per-operator searched optima *)
  best_traffic : int option;  (** min of fused and unfused *)
  fusion_wins : bool;
}

val decide :
  ?lattice:Space.lattice -> ?pool:Fusecu_util.Pool.t -> Fused.pair -> Buffer.t
  -> verdict
(** Exhaustive comparison of fusing vs not fusing — the oracle used to
    validate Principle 4. *)
