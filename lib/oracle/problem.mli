(** A randomly generated (or user-specified) conformance problem: one
    matmul, a producer/consumer pair, or a three-operator chain, plus a
    buffer size in elements.

    Problems round-trip through a compact [key=value] spec
    ([m=7,k=3,l=4,l2=2,bs=16]) so every counterexample in a CI log is a
    one-liner away from reproduction:
    [fusecu_opt check --repro m=7,k=3,l=4,l2=2,bs=16]. *)

open Fusecu_tensor
open Fusecu_loopnest

type shape =
  | Single
  | Pair of { l2 : int }  (** consumer [C(M,L) x D(L,l2)] *)
  | Chain3 of { l2 : int; l3 : int }

type t = { m : int; k : int; l : int; shape : shape; bs : int }

val op1 : t -> Matmul.t

val ops : t -> Matmul.t list

val pair : t -> Fused.pair option
(** The fused pair, for [Pair] problems. *)

val chain : t -> Chain.t option
(** The operator chain, for [Chain3] problems. *)

val buffer : t -> Buffer.t

val to_spec : t -> string

val of_spec : string -> (t, string) result
(** Parse [m=..,k=..,l=..,bs=..[,l2=..[,l3=..]]] (any field order). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val size : t -> int * int * int
(** Shrinking order: (operator count, dimension sum, buffer size),
    compared lexicographically. *)
