(** Seeded problem generator. Dimensions are biased small (ragged-edge
    territory, cheap exhaustive ground truth); buffer sizes are
    concentrated on the regime boundaries [Dmin^2/4], [Dmin^2/2] and
    the exact Three-NRA feasibility edge, each sampled at
    [edge - 1 / edge / edge + 1], plus the minimum feasible footprint
    and the unbounded-buffer cap, with a uniform backstop. *)

val problem : Rng.t -> max_dim:int -> Problem.t

val buffer_size : Rng.t -> Problem.t -> int
(** Resample only the buffer size for a fixed operator skeleton
    (exposed for the shrinker's buffer anchors). *)
