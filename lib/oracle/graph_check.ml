open Fusecu_loopnest
open Fusecu_workloads
module Partition = Fusecu_planner.Partition

type node_spec = { count : int; k0 : int; ls : int list }

type t = {
  m : int;
  bytes : int;
  nodes : node_spec list;
  edges : (int * int) list;
}

(* ------------------------------------------------------------------ *)
(* Spec round-trip                                                     *)

let node_to_spec n =
  Printf.sprintf "%d*%d:%s" n.count n.k0
    (String.concat ":" (List.map string_of_int n.ls))

let to_spec t =
  let nodes = String.concat "|" (List.map node_to_spec t.nodes) in
  let base = Printf.sprintf "m=%d,b=%d,nodes=%s" t.m t.bytes nodes in
  match t.edges with
  | [] -> base
  | es ->
    base ^ ",edges="
    ^ String.concat "|"
        (List.map (fun (s, d) -> Printf.sprintf "%d-%d" s d) es)

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not an integer (%S)" what s)

let ( let* ) = Result.bind

let parse_node s =
  match String.split_on_char '*' s with
  | [ c; dims ] -> (
    let* count = parse_int "node count" c in
    match String.split_on_char ':' dims with
    | k0s :: (_ :: _ as lss) ->
      let* k0 = parse_int "node k" k0s in
      let* ls =
        List.fold_left
          (fun acc l ->
            let* acc = acc in
            let* l = parse_int "node l" l in
            Ok (l :: acc))
          (Ok []) lss
      in
      let ls = List.rev ls in
      if count < 1 || k0 < 1 || List.exists (fun l -> l < 1) ls then
        Error (Printf.sprintf "node %S: dimensions must be >= 1" s)
      else Ok { count; k0; ls }
    | _ -> Error (Printf.sprintf "node %S: want k:l1[:l2...]" s))
  | _ -> Error (Printf.sprintf "node %S: want count*k:l1[:l2...]" s)

let parse_edge s =
  match String.split_on_char '-' s with
  | [ a; b ] ->
    let* src = parse_int "edge src" a in
    let* dst = parse_int "edge dst" b in
    Ok (src, dst)
  | _ -> Error (Printf.sprintf "edge %S: want src-dst" s)

let of_spec spec =
  let fields =
    List.filter_map
      (fun f ->
        match String.index_opt f '=' with
        | Some i ->
          Some
            ( String.trim (String.sub f 0 i),
              String.sub f (i + 1) (String.length f - i - 1) )
        | None -> None)
      (String.split_on_char ',' (String.trim spec))
  in
  let field k = List.assoc_opt k fields in
  let* m =
    match field "m" with
    | Some v -> parse_int "m" v
    | None -> Error "missing field m"
  in
  let* bytes =
    match field "b" with
    | Some v -> parse_int "b" v
    | None -> Error "missing field b"
  in
  let* nodes =
    match field "nodes" with
    | None | Some "" -> Error "missing field nodes"
    | Some v ->
      let* ns =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* n = parse_node s in
            Ok (n :: acc))
          (Ok [])
          (String.split_on_char '|' v)
      in
      Ok (List.rev ns)
  in
  let* edges =
    match field "edges" with
    | None | Some "" -> Ok []
    | Some v ->
      let* es =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* e = parse_edge s in
            Ok (e :: acc))
          (Ok [])
          (String.split_on_char '|' v)
      in
      Ok (List.rev es)
  in
  let n = List.length nodes in
  if m < 1 then Error "m must be >= 1"
  else if bytes < 1 then Error "b must be >= 1"
  else if n > 8 then Error "at most 8 nodes"
  else if
    List.exists (fun (s, d) -> s < 0 || d < 0 || s >= n || d >= n || s >= d)
      edges
  then Error "edges must satisfy 0 <= src < dst < nodes"
  else Ok { m; bytes; nodes; edges }

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)

let node_ops t (n : node_spec) =
  let _, rev =
    List.fold_left
      (fun (k, acc) l ->
        (l, Fusecu_tensor.Matmul.make ~m:t.m ~k ~l () :: acc))
      (n.k0, []) n.ls
  in
  List.rev rev

let graph t =
  let mk i n =
    let ops = node_ops t n in
    let* work =
      match ops with
      | [ op ] -> Ok (Graph.Op { op; count = n.count })
      | ops ->
        let* chain = Fusecu_tensor.Chain.make ops in
        Ok (Graph.Chain { chain; count = n.count })
    in
    let deps = List.filter_map (fun (s, d) -> if d = i then Some s else None) t.edges in
    Ok { Graph.id = i; name = Printf.sprintf "n%d" i; work; deps }
  in
  let* nodes =
    List.fold_left
      (fun acc (i, n) ->
        let* acc = acc in
        let* node = mk i n in
        Ok (node :: acc))
      (Ok [])
      (List.mapi (fun i n -> (i, n)) t.nodes)
  in
  Graph.make (List.rev nodes)

(* ------------------------------------------------------------------ *)
(* Conformance checks                                                  *)

type failure = { check : string; detail : string }

type outcome = { checks : int; failures : failure list }

let edge_ids (sel : Partition.edge list) =
  String.concat ","
    (List.map
       (fun (e : Partition.edge) ->
         Printf.sprintf "%d-%d" e.Partition.src e.Partition.dst)
       sel)

let check t =
  match graph t with
  | Error e -> { checks = 1; failures = [ { check = "graph"; detail = e } ] }
  | Ok g -> (
    let buf = Buffer.make t.bytes in
    let planned = Partition.plan g buf in
    let brute = Partition.exhaustive g buf in
    match (planned, brute) with
    | Error _, Error _ -> { checks = 1; failures = [] }
    | Error e, Ok _ ->
      { checks = 1;
        failures =
          [ { check = "feasibility";
              detail = "plan infeasible but exhaustive succeeded: " ^ e } ] }
    | Ok _, Error e ->
      { checks = 1;
        failures =
          [ { check = "feasibility";
              detail = "exhaustive infeasible but plan succeeded: " ^ e } ] }
    | Ok p, Ok ex ->
      let b = ex.Partition.best in
      let checks = ref 0 and failures = ref [] in
      let assert_ name cond detail =
        incr checks;
        if not cond then failures := { check = name; detail } :: !failures
      in
      assert_ "effective"
        (p.Partition.effective = b.Partition.effective)
        (Printf.sprintf "plan %d vs exhaustive %d" p.Partition.effective
           b.Partition.effective);
      assert_ "traffic"
        (p.Partition.traffic = b.Partition.traffic)
        (Printf.sprintf "plan %d vs exhaustive %d" p.Partition.traffic
           b.Partition.traffic);
      assert_ "selection"
        (edge_ids p.Partition.selected = edge_ids b.Partition.selected)
        (Printf.sprintf "plan [%s] vs exhaustive [%s]"
           (edge_ids p.Partition.selected)
           (edge_ids b.Partition.selected));
      let covered =
        List.sort compare
          (List.concat_map
             (fun (gr : Partition.group) ->
               List.map (fun (n : Graph.node) -> n.Graph.id) gr.Partition.members)
             p.Partition.groups)
      in
      assert_ "cover"
        (covered = List.init (List.length t.nodes) Fun.id)
        (Printf.sprintf "groups cover [%s]"
           (String.concat "," (List.map string_of_int covered)));
      assert_ "baseline"
        (p.Partition.effective <= p.Partition.unfused_effective)
        (Printf.sprintf "effective %d above unfused %d" p.Partition.effective
           p.Partition.unfused_effective);
      { checks = !checks; failures = List.rev !failures })

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let gen rng ~max_dim =
  let dim () = Rng.range rng ~lo:1 ~hi:max_dim in
  let n_nodes = Rng.range rng ~lo:2 ~hi:8 in
  let m = dim () in
  (* bias the stream toward chainable structure: most nodes continue an
     earlier node (same count, k matching the parent's output), so the
     planner sees real candidate edges, not just isolated singletons *)
  let nodes = Array.make n_nodes { count = 1; k0 = 1; ls = [ 1 ] } in
  let edges = ref [] in
  for i = 0 to n_nodes - 1 do
    let n_ops = Rng.range rng ~lo:1 ~hi:2 in
    let ls = List.init n_ops (fun _ -> dim ()) in
    if i > 0 && Rng.int rng 10 < 6 then begin
      let p = Rng.int rng i in
      let parent = nodes.(p) in
      nodes.(i) <- { count = parent.count; k0 = List.hd (List.rev parent.ls); ls };
      edges := (p, i) :: !edges
    end
    else nodes.(i) <- { count = dim (); k0 = dim (); ls };
    (* occasionally a second, usually non-chainable, dependency *)
    if i > 0 && Rng.int rng 10 < 3 then begin
      let q = Rng.int rng i in
      if not (List.mem (q, i) !edges) then edges := (q, i) :: !edges
    end
  done;
  let bytes = Rng.range rng ~lo:3 ~hi:(4 * max_dim * max_dim) in
  { m;
    bytes;
    nodes = Array.to_list nodes;
    edges = List.sort compare !edges }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

let drop_node t j =
  let remap i = if i > j then i - 1 else i in
  { t with
    nodes = drop_nth t.nodes j;
    edges =
      List.filter_map
        (fun (s, d) ->
          if s = j || d = j then None else Some (remap s, remap d))
        t.edges }

let halve d = if d > 1 then Some ((d + 1) / 2) else None

let proposals t =
  let with_node j n' = { t with nodes = List.mapi (fun i n -> if i = j then n' else n) t.nodes } in
  let node_props =
    List.concat
      (List.mapi
         (fun j (n : node_spec) ->
           List.concat
             [ (if List.length t.nodes > 1 then [ drop_node t j ] else []);
               (if List.length n.ls > 1 then
                  [ with_node j { n with ls = [ List.hd n.ls ] } ]
                else []);
               (match halve n.count with
               | Some c -> [ with_node j { n with count = c } ]
               | None -> []);
               (match halve n.k0 with
               | Some k -> [ with_node j { n with k0 = k } ]
               | None -> []);
               List.filter_map
                 (fun i ->
                   Option.map
                     (fun l ->
                       with_node j
                         { n with
                           ls = List.mapi (fun x v -> if x = i then l else v) n.ls })
                     (halve (List.nth n.ls i)))
                 (List.init (List.length n.ls) Fun.id) ])
         t.nodes)
  in
  let edge_props = List.mapi (fun i _ -> { t with edges = drop_nth t.edges i }) t.edges in
  let dim_props =
    (match halve t.m with Some m -> [ { t with m } ] | None -> [])
    @
    match if t.bytes > 3 then Some (max 3 (t.bytes / 2)) else None with
    | Some bytes -> [ { t with bytes } ]
    | None -> []
  in
  node_props @ edge_props @ dim_props

let minimize ?(budget = 200) t ~still_fails =
  let spent = ref 0 in
  let try_one p =
    if !spent >= budget then false
    else begin
      incr spent;
      still_fails p
    end
  in
  let rec go t =
    match List.find_opt try_one (proposals t) with
    | Some simpler when !spent < budget -> go simpler
    | _ -> t
  in
  go t

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

type counterexample = {
  index : int;
  original : t;
  shrunk : t;
  failures : failure list;
}

type report = {
  cases : int;
  checks : int;
  candidate_edges : int;
  fused_cases : int;
  counterexamples : counterexample list;
}

let ok r = r.counterexamples = []

let failed_names (o : outcome) = List.map (fun f -> f.check) o.failures

let run ?(log = ignore) ~cases ~seed ?(max_dim = 8) () =
  let rng = Rng.make seed in
  let checks = ref 0 and cand = ref 0 and fused = ref 0 in
  let cexs = ref [] in
  for index = 1 to cases do
    let t = gen rng ~max_dim in
    let o = check t in
    checks := !checks + o.checks;
    (match graph t with
    | Ok g -> (
      match Partition.plan g (Buffer.make t.bytes) with
      | Ok p ->
        cand := !cand + p.Partition.stats.Partition.candidate_edges;
        if p.Partition.selected <> [] then incr fused
      | Error _ -> ())
    | Error _ -> ());
    if o.failures <> [] then begin
      let names = failed_names o in
      let still_fails t' =
        let o' = check t' in
        List.exists (fun f -> List.mem f.check names) o'.failures
      in
      let shrunk = minimize t ~still_fails in
      let o' = check shrunk in
      log
        (Printf.sprintf "case %d diverged; shrunk repro: %s" index
           (to_spec shrunk));
      cexs := { index; original = t; shrunk; failures = o'.failures } :: !cexs
    end
  done;
  { cases;
    checks = !checks;
    candidate_edges = !cand;
    fused_cases = !fused;
    counterexamples = List.rev !cexs }

let check_spec spec =
  let* t = of_spec spec in
  Ok (t, check t)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_counterexample fmt c =
  Format.fprintf fmt "@[<v>case %d diverged:@,  original: %s@,  shrunk:   %s@,"
    c.index (to_spec c.original) (to_spec c.shrunk);
  List.iter
    (fun f -> Format.fprintf fmt "  [%s] %s@," f.check f.detail)
    c.failures;
  Format.fprintf fmt "  repro: fusecu_opt check --graph-repro %s@]"
    (to_spec c.shrunk)

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>graph oracle: %d cases, %d checks, %d candidate edges, %d cases \
     with fusion@,"
    r.cases r.checks r.candidate_edges r.fused_cases;
  (match r.counterexamples with
  | [] -> Format.fprintf fmt "no divergences@]"
  | cs ->
    Format.fprintf fmt "%d DIVERGENCES:@," (List.length cs);
    List.iter (fun c -> Format.fprintf fmt "%a@," pp_counterexample c) cs;
    Format.fprintf fmt "@]")
