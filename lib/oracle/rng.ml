(* SplitMix64 (Steele, Lea & Flood 2014). Self-contained so oracle runs
   are reproducible from the seed alone, independent of the stdlib
   Random implementation (which is free to change between OCaml
   releases — the shrunk counterexamples in test_oracle.ml must keep
   meaning the same problems forever). *)

type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let next64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let split t = make (Int64.to_int (next64 t))
