(** Differential oracle for the whole-model fusion planner.

    Generates seeded random workload graphs small enough to enumerate
    (at most 8 nodes, at most 20 candidate edges) and asserts that
    {!Fusecu_planner.Partition.plan} — the DP / branch-and-bound
    partitioner — returns exactly the optimum found by
    {!Fusecu_planner.Partition.exhaustive}: same effective cost, same
    raw traffic, and the same selected edge set under the deterministic
    tie-break. Divergences are greedily shrunk (drop nodes, drop edges,
    shrink dimensions and counts, shrink the buffer) and printed as
    [fusecu_opt check --graph-repro <spec>] one-liners.

    Like {!Oracle}, a run is a pure function of [(seed, cases,
    max_dim)]. *)

type node_spec = { count : int; k0 : int; ls : int list }
(** One graph node: [count] instances of the operator chain whose first
    operator is [m x k0 x hd ls] and whose later operators each consume
    the previous output ([k = previous l]). [ls] is non-empty. *)

type t = {
  m : int;  (** shared row dimension of every operator *)
  bytes : int;  (** buffer size in bytes, 1-byte elements *)
  nodes : node_spec list;
  edges : (int * int) list;  (** dependency edges, producer first *)
}

val to_spec : t -> string
(** Compact one-liner, e.g. [m=4,b=256,nodes=1*3:5|1*5:2,edges=0-1].
    [nodes] entries are [count*k0:l1:l2...] separated by [|]; [edges]
    are [src-dst] pairs separated by [|] (omitted when empty). *)

val of_spec : string -> (t, string) result

val graph : t -> (Fusecu_workloads.Graph.t, string) result
(** The {!Fusecu_workloads.Graph} this spec denotes (nodes named [n0],
    [n1], ...). *)

type failure = { check : string; detail : string }

type outcome = { checks : int; failures : failure list }

val check : t -> outcome
(** Run planner-vs-exhaustive conformance on one graph. Also asserts
    the structural invariants: groups cover every node exactly once,
    the effective cost never exceeds the all-singleton baseline, and
    both sides agree on infeasibility. *)

val proposals : t -> t list
(** Strictly simpler variants, simplest first: drop a node (with its
    edges), drop an edge, drop trailing operators, and halve counts,
    dimensions, and the buffer. *)

val minimize : ?budget:int -> t -> still_fails:(t -> bool) -> t
(** Greedy shrink, mirroring {!Shrink.minimize}: repeatedly take the
    first simpler variant on which [still_fails] holds, spending at
    most [budget] (default 200) predicate evaluations. *)

type counterexample = {
  index : int;  (** 1-based case index within the run *)
  original : t;
  shrunk : t;
  failures : failure list;  (** failures on the shrunk spec *)
}

type report = {
  cases : int;
  checks : int;
  candidate_edges : int;  (** total candidate edges across the run *)
  fused_cases : int;  (** cases where the optimum fuses at least once *)
  counterexamples : counterexample list;
}

val ok : report -> bool

val run :
  ?log:(string -> unit) -> cases:int -> seed:int -> ?max_dim:int -> unit ->
  report
(** [max_dim] (default 8) bounds generated dimensions and counts. *)

val check_spec : string -> (t * outcome, string) result
(** Re-run one graph given by its spec string — the reproduction path
    for logged counterexamples. *)

val pp_counterexample : Format.formatter -> counterexample -> unit

val pp_report : Format.formatter -> report -> unit
