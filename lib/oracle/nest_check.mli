(** Differential conformance oracle for the projective loop-nest IR
    ([check --nests]).

    Each generated problem is a nest kind (matmul, conv2d, batched MM,
    grouped MM, attention pair) plus a buffer budget. The checks:

    - [nest/bnb-exact] — {!Fusecu_dse.Nest_bnb.search} reproduces
      {!Fusecu_nest.Search.exhaustive} bit-for-bit on the Divisors
      lattice: same feasibility verdict, cost, tiling index, order
      rank, tiles and order;
    - [nest/analytic-sim] — {!Fusecu_nest.Nest.eval} equals
      {!Fusecu_nest.Nsim.eval} per tensor on the winner and on random
      lattice schedules (skipped above a simulation points cap);
    - [nest/bound-ideal], [nest/bound-admissible] — the winner never
      beats [Bound.ideal], and [Bound.penalized] at the winner's actual
      trips stays at or below its cost;
    - [nest/winner-valid], [nest/winner-fits];
    - [nest/legacy-exact] (matmul only) — the nest winner matches the
      legacy {!Fusecu_dse.Exhaustive} optimum in cost and tiles;
    - [nest/conv-macs], [nest/conv-im2col-ideal] (conv only) — the
      iteration count equals [Conv.macs] and the halo-exact input
      lower bound never exceeds the im2col-inflated one.

    Failures shrink greedily toward smaller dimensions/buffers while
    preserving at least one failing check of the same name. *)

type kind =
  | Mm of { m : int; k : int; l : int }
  | Conv of Fusecu_tensor.Conv.t
  | Bmm of { b : int; m : int; k : int; l : int }
  | Gmm of { g : int; hd : int; m : int; k : int; l : int }
  | Attn of { q : int; n : int; d : int; dv : int }

type problem = { kind : kind; bs : int }
(** [bs] is the buffer budget in bytes (1-byte elements). *)

val kind_name : kind -> string

val to_nest : problem -> Fusecu_nest.Nest.t

val to_spec : problem -> string
(** Canonical one-line form, e.g.
    [kind=conv,n=1,c=2,h=6,w=6,k=3,r=3,s=3,st=1,di=1,pa=0,bs=64]. *)

val of_spec : string -> (problem, string) result
(** Inverse of {!to_spec}; [st]/[di]/[pa]/[dv] are optional. *)

val equal : problem -> problem -> bool

val pp : Format.formatter -> problem -> unit

type failure = { check : string; detail : string }

type outcome = { checks : int; failures : failure list }

val failure_names : outcome -> string list

val seed_of : problem -> int
(** FNV-1a over the spec — the per-problem schedule-sampling stream is
    position-independent. *)

val run : problem -> outcome
(** Execute every applicable check against one problem. *)

val gen : Rng.t -> max_dim:int -> problem
(** Draw a random problem. Conv parameters are sampled avoid-but-test
    style: raw draws may violate the output-shape constraints and are
    filtered through [Conv.validate], so the oracle soaks only valid
    operators while the unit tests pin rejection of the invalid ones. *)

val minimize : ?budget:int -> problem -> still_fails:(problem -> bool) -> problem
(** Greedy shrink over smaller dimensions and buffers. *)

type counterexample = {
  index : int;  (** 1-based case number in the run *)
  original : problem;
  shrunk : problem;
  failures : failure list;
}

type report = {
  cases : int;
  checks : int;
  counterexamples : counterexample list;
  by_kind : (string * int) list;
}

val ok : report -> bool

val soak :
  ?log:(string -> unit) -> cases:int -> seed:int -> ?max_dim:int -> unit ->
  report
(** Generate and check [cases] problems; divergences are shrunk
    (demanding a same-named failing check) and collected. *)

val check_spec : string -> (problem * outcome, string) result
(** Parse and run a single spec — the [--nest-repro] entry point. *)

val pp_counterexample : Format.formatter -> counterexample -> unit

val pp_report : Format.formatter -> report -> unit
