(** The differential conformance oracle runner.

    Generates [cases] seeded random problems (see {!Gen}), runs the
    three-way checks of {!Check} on each, and greedily shrinks every
    failure to a (locally) minimal counterexample. The whole run is a
    pure function of [(seed, cases, max_dim)]: a counterexample printed
    in a CI log reproduces bit-for-bit anywhere with
    [fusecu_opt check --repro <spec>]. *)

type counterexample = {
  index : int;  (** 1-based case index within the run *)
  original : Problem.t;
  shrunk : Problem.t;
  failures : Check.failure list;  (** failures on the shrunk problem *)
}

type report = {
  cases : int;
  checks : int;  (** individual conformance checks evaluated *)
  counterexamples : counterexample list;
  by_regime : (string * int) list;  (** generated-case tally by regime *)
  by_shape : (string * int) list;  (** tally by single/pair/chain3 *)
}

val ok : report -> bool
(** No divergences. *)

val run :
  ?log:(string -> unit) ->
  ?mapper:Check.mapper ->
  cases:int ->
  seed:int ->
  ?max_dim:int ->
  unit ->
  report
(** [log] receives a one-line progress message per divergence as it is
    found (before the final report); [mapper] (default [Principles])
    selects the check set (see {!Check.mapper}) — [Bnb] additionally
    soaks the branch-and-bound mapper against the exhaustive optimum;
    [max_dim] (default 24) bounds the generated matmul dimensions. *)

val check_spec :
  ?mapper:Check.mapper -> string -> (Problem.t * Check.outcome, string) result
(** Re-run the checks on one problem given by its spec string
    ([m=7,k=3,l=4,l2=2,bs=16]) — the reproduction path for logged
    counterexamples. *)

val pp_counterexample : Format.formatter -> counterexample -> unit

val pp_report : Format.formatter -> report -> unit
