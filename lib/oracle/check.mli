(** The three-way differential conformance checks, run on one problem:

    - {e principles vs exhaustive}: the one-shot principle plan must hit
      the exhaustive-search optimum over the full tiling space (and
      agree on feasibility);
    - {e analytic vs simulated}: [Cost.eval] must equal [Sim.eval]
      per operand (traffic, fetches, revisit) on the chosen plan and on
      random ragged schedules;
    - {e vs lower bounds}: traffic never below the unbounded bound, and
      in the [Large] regime exactly equal to it;
    - {e fusion} (pair problems): [Best_of_both] equals the exhaustive
      fused-vs-unfused verdict, a [Fuse] decision simulates to its
      analytic traffic, never loses to its own unfused baseline, and
      the [By_principle] gate deviates only when the classes differ;
    - {e chains} (three-operator problems): whole-chain decisions
      validate, never lose to pairwise planning, respect the fused
      lower bound, and the analytic chain traffic equals the simulated
      traffic of the external operands.

    All ground truths use [Mode.Exact] and the full [Space.All]
    lattice. *)

type failure = { check : string; detail : string }

type outcome = { checks : int; failures : failure list }

type mapper =
  | Principles  (** the default check set *)
  | Bnb
      (** additionally assert that {!Fusecu_dse.Bnb} — seeded exactly as
          the service hot path seeds it — reproduces the exhaustive
          optimum bit-for-bit (feasibility, traffic and schedule), both
          intra-operator ([opN/bnb-exact]) and fused ([fuse/bnb-exact]) *)

val run : ?mapper:mapper -> Problem.t -> outcome
(** [mapper] defaults to [Principles]. *)

val failure_names : outcome -> string list
(** Sorted, de-duplicated check names that failed. *)
