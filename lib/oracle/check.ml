open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse

type failure = { check : string; detail : string }

type outcome = { checks : int; failures : failure list }

type mapper = Principles | Bnb

let mode = Mode.Exact

let lattice = Space.All

(* Deterministic per-problem stream for the ragged-schedule samples:
   FNV-1a over the spec string, so a problem's verdict is a pure
   function of the problem (independent of its position in a run). *)
let seed_of p =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    (Problem.to_spec p);
  !h

type ctx = { mutable checks : int; mutable failures : failure list }

let check ctx name ok detail =
  ctx.checks <- ctx.checks + 1;
  if not ok then ctx.failures <- { check = name; detail = detail () } :: ctx.failures

let operand_cost_equal a b =
  let open Cost in
  a.traffic = b.traffic && a.fetches = b.fetches && a.revisit = b.revisit

let pp_op_cost (c : Cost.per_operand) =
  Printf.sprintf "t=%d f=%d r=%d" c.Cost.traffic c.Cost.fetches c.Cost.revisit

(* Analytic cost model vs the loop-nest simulator on one schedule,
   per operand, including ragged edges. *)
let sim_vs_cost ctx ~name op schedule =
  let analytic = Cost.eval op schedule in
  let simulated = Sim.eval op schedule in
  check ctx name
    (analytic.Cost.total = simulated.Cost.total
    && List.for_all
         (fun x ->
           operand_cost_equal (Cost.operand analytic x) (Cost.operand simulated x))
         Operand.all)
    (fun () ->
      Printf.sprintf "schedule %s: analytic total=%d %s, sim total=%d %s"
        (Schedule.to_string schedule) analytic.Cost.total
        (String.concat " "
           (List.map
              (fun x ->
                Printf.sprintf "%s(%s)" (Operand.to_string x)
                  (pp_op_cost (Cost.operand analytic x)))
              Operand.all))
        simulated.Cost.total
        (String.concat " "
           (List.map
              (fun x ->
                Printf.sprintf "%s(%s)" (Operand.to_string x)
                  (pp_op_cost (Cost.operand simulated x)))
              Operand.all)))

(* B&B must reproduce the exhaustive optimum bit-for-bit — feasibility,
   traffic AND schedule — when seeded with the principle plan exactly as
   the service hot path seeds it. *)
let bnb_intra_checks ctx tag op buf planned searched =
  let seed =
    match planned with
    | Ok (p : Intra.plan) -> Some p.Intra.schedule
    | Error _ -> None
  in
  let b = Bnb.search ~lattice ?seed op buf in
  match (searched, b) with
  | None, None -> check ctx (tag ^ "/bnb-exact") true (fun () -> "")
  | Some (ex : Exhaustive.result), Some (b : Exhaustive.result) ->
    check ctx (tag ^ "/bnb-exact")
      (b.cost.Cost.total = ex.cost.Cost.total
      && Schedule.equal b.schedule ex.schedule)
      (fun () ->
        Printf.sprintf "bnb=%d (%s) vs exhaustive=%d (%s)" b.cost.Cost.total
          (Schedule.to_string b.schedule)
          ex.cost.Cost.total
          (Schedule.to_string ex.schedule))
  | Some ex, None ->
    check ctx (tag ^ "/bnb-exact") false (fun () ->
        Printf.sprintf "bnb infeasible but exhaustive found %d"
          ex.Exhaustive.cost.Cost.total)
  | None, Some b ->
    check ctx (tag ^ "/bnb-exact") false (fun () ->
        Printf.sprintf "bnb found %d but exhaustive infeasible"
          b.Exhaustive.cost.Cost.total)

let intra_checks ctx ~mapper tag op buf =
  let planned = Intra.optimize ~mode op buf in
  let searched = Exhaustive.search ~lattice op buf in
  if mapper = Bnb then bnb_intra_checks ctx tag op buf planned searched;
  (match (planned, searched) with
  | Error _, None -> ()
  | Error e, Some ex ->
    check ctx (tag ^ "/feasibility") false (fun () ->
        Printf.sprintf "principles infeasible (%s) but exhaustive found %d" e
          ex.Exhaustive.cost.Cost.total)
  | Ok plan, None ->
    check ctx (tag ^ "/feasibility") false (fun () ->
        Printf.sprintf "principles found %d but exhaustive infeasible"
          (Intra.ma plan))
  | Ok plan, Some ex ->
    check ctx (tag ^ "/feasibility") true (fun () -> "");
    check ctx
      (tag ^ "/optimal")
      (Intra.ma plan = ex.Exhaustive.cost.Cost.total)
      (fun () ->
        Printf.sprintf "principles=%d (%s) vs exhaustive=%d (%s)" (Intra.ma plan)
          (Schedule.to_string plan.Intra.schedule)
          ex.Exhaustive.cost.Cost.total
          (Schedule.to_string ex.Exhaustive.schedule));
    sim_vs_cost ctx ~name:(tag ^ "/sim") op plan.Intra.schedule;
    check ctx
      (tag ^ "/lower-bound")
      (Intra.ma plan >= Lower_bound.intra op)
      (fun () ->
        Printf.sprintf "traffic %d below unbounded lower bound %d" (Intra.ma plan)
          (Lower_bound.intra op));
    let regime = Regime.classify op buf in
    let cls = Nra.class_of plan.Intra.dataflow in
    let ok =
      match regime with
      | Regime.Large ->
        (* with the exact feasibility threshold, Large means the
           unbounded bound is reachable — and therefore reached *)
        Intra.ma plan = Lower_bound.intra op
      | _ -> List.exists (Nra.equal cls) (Regime.expected_classes regime)
    in
    check ctx (tag ^ "/regime") ok (fun () ->
        Printf.sprintf "%s regime but %s dataflow with traffic %d (ideal %d)"
          (Regime.to_string regime) (Nra.to_string cls) (Intra.ma plan)
          (Lower_bound.intra op)))

(* Random (mostly ragged) schedules, unconstrained by the buffer: the
   simulator and the analytic model must agree everywhere, not just on
   feasible optima. *)
let ragged_checks ctx rng tag op =
  for _ = 1 to 8 do
    let tile d = Rng.range rng ~lo:1 ~hi:(Matmul.dim op d) in
    let tiling =
      Tiling.make op ~m:(tile Dim.M) ~k:(tile Dim.K) ~l:(tile Dim.L)
    in
    let schedule = Schedule.make tiling (Rng.choose rng Order.all) in
    sim_vs_cost ctx ~name:(tag ^ "/ragged-sim") op schedule
  done

let fused_sim_traffic pair (f : Fused.t) =
  let p = Sim.eval pair.Fused.op1 f.Fused.producer in
  let c = Sim.eval pair.Fused.op2 f.Fused.consumer in
  p.Cost.a.Cost.traffic + p.Cost.b.Cost.traffic + c.Cost.b.Cost.traffic
  + c.Cost.c.Cost.traffic

(* Same bit-for-bit contract on the fused side: the fused B&B (seeded
   the way the service seeds it, from the principle fusion decision)
   must agree with Fused_search.exhaustive on feasibility, traffic and
   the winning producer/consumer schedules. *)
let bnb_fused_checks ctx pair buf planned_pair verdict =
  let seed =
    match planned_pair with
    | Ok (Fusion.Fuse { fused; _ }) -> Some fused
    | Ok (Fusion.No_fuse _) | Error _ -> None
  in
  let b = Bnb.search_fused ~lattice ?seed pair buf in
  match (verdict.Fused_search.fused_best, b) with
  | None, None -> check ctx "fuse/bnb-exact" true (fun () -> "")
  | Some (ex : Fused_search.result), Some (b : Fused_search.result) ->
    check ctx "fuse/bnb-exact"
      (b.traffic = ex.traffic
      && Schedule.equal b.fused.Fused.producer ex.fused.Fused.producer
      && Schedule.equal b.fused.Fused.consumer ex.fused.Fused.consumer)
      (fun () ->
        Printf.sprintf "bnb fused=%d vs exhaustive fused=%d" b.traffic
          ex.traffic)
  | Some ex, None ->
    check ctx "fuse/bnb-exact" false (fun () ->
        Printf.sprintf "bnb found no fused dataflow but exhaustive found %d"
          ex.Fused_search.traffic)
  | None, Some b ->
    check ctx "fuse/bnb-exact" false (fun () ->
        Printf.sprintf "bnb found fused %d but exhaustive found none"
          b.Fused_search.traffic)

let pair_checks ctx ~mapper pair buf =
  let chain = Chain.make_exn [ pair.Fused.op1; pair.Fused.op2 ] in
  let verdict = Fused_search.decide ~lattice pair buf in
  let planned_pair = Fusion.plan_pair ~mode ~strategy:Fusion.Best_of_both pair buf in
  if mapper = Bnb then bnb_fused_checks ctx pair buf planned_pair verdict;
  match planned_pair with
  | Error _ ->
    check ctx "fuse/feasibility"
      (verdict.Fused_search.best_traffic = None)
      (fun () -> "planner infeasible but exhaustive search found a dataflow")
  | Ok decision ->
    let traffic = Fusion.traffic_of_decision decision in
    (match verdict.Fused_search.best_traffic with
    | None ->
      check ctx "fuse/feasibility" false (fun () ->
          "planner produced a plan but exhaustive search found none")
    | Some best ->
      check ctx "fuse/optimal" (traffic = best) (fun () ->
          Printf.sprintf "best-of-both=%d vs exhaustive best=%d (fused=%s unfused=%s)"
            traffic best
            (match verdict.Fused_search.fused_best with
            | Some f -> string_of_int f.Fused_search.traffic
            | None -> "-")
            (match verdict.Fused_search.unfused_traffic with
            | Some u -> string_of_int u
            | None -> "-")));
    (match decision with
    | Fusion.No_fuse _ -> ()
    | Fusion.Fuse { fused; traffic; _ } ->
      check ctx "fuse/sim"
        (fused_sim_traffic pair fused = traffic)
        (fun () ->
          Printf.sprintf "analytic fused traffic %d but simulated %d" traffic
            (fused_sim_traffic pair fused));
      check ctx "fuse/lower-bound"
        (traffic >= Chain.ideal_ma_fused chain)
        (fun () ->
          Printf.sprintf "fused traffic %d below fused lower bound %d" traffic
            (Chain.ideal_ma_fused chain)));
    (* Principle-4 soundness: a Fuse decision never moves more data
       than its own unfused baseline, and the By_principle gate only
       changes the outcome when the classes differ. *)
    (match
       (Intra.optimize ~mode pair.Fused.op1 buf,
        Intra.optimize ~mode pair.Fused.op2 buf)
     with
    | Ok p1, Ok p2 -> (
      let unfused = Intra.ma p1 + Intra.ma p2 in
      check ctx "fuse/profitable" (traffic <= unfused) (fun () ->
          Printf.sprintf "decision traffic %d exceeds unfused baseline %d" traffic
            unfused);
      let classes_equal =
        Fusion.profitable
          (Nra.class_of p1.Intra.dataflow)
          (Nra.class_of p2.Intra.dataflow)
      in
      match Fusion.plan_pair ~mode ~strategy:Fusion.By_principle pair buf with
      | Error e ->
        check ctx "fuse/principle" false (fun () ->
            "By_principle infeasible where Best_of_both was not: " ^ e)
      | Ok by_principle ->
        let pt = Fusion.traffic_of_decision by_principle in
        if classes_equal then
          check ctx "fuse/principle" (pt = traffic) (fun () ->
              Printf.sprintf
                "classes equal but By_principle=%d differs from Best_of_both=%d"
                pt traffic)
        else
          check ctx "fuse/principle"
            (match by_principle with
            | Fusion.No_fuse _ -> pt = unfused
            | Fusion.Fuse _ -> false)
            (fun () ->
              Printf.sprintf
                "classes differ but By_principle fused (traffic %d, unfused %d)"
                pt unfused))
    | _ -> ())

let chain_checks ctx chain buf =
  match Multi_fusion.plan ~mode chain buf with
  | Error _ -> ()
  | Ok decision ->
    let traffic = Multi_fusion.traffic_of_decision decision in
    check ctx "chain/lower-bound"
      (traffic >= Chain.ideal_ma_fused chain)
      (fun () ->
        Printf.sprintf "chain traffic %d below fused lower bound %d" traffic
          (Chain.ideal_ma_fused chain));
    (match Planner.plan_chain ~mode chain buf with
    | Error e ->
      check ctx "chain/pairwise" false (fun () ->
          "whole-chain plan exists but pairwise planning failed: " ^ e)
    | Ok pairwise ->
      check ctx "chain/not-worse"
        (traffic <= pairwise.Planner.traffic)
        (fun () ->
          Printf.sprintf "chain decision %d worse than pairwise %d" traffic
            pairwise.Planner.traffic);
      check ctx "chain/pairwise"
        (pairwise.Planner.traffic
        = Fusecu_util.Arith.sum
            (List.map Planner.segment_traffic pairwise.Planner.segments))
        (fun () -> "pairwise total is not the sum of its segments"));
    (match decision with
    | Multi_fusion.Fallback _ -> ()
    | Multi_fusion.Full_fusion { fused; traffic } ->
      (match Multi_fusion.eval chain fused buf with
      | Error e ->
        check ctx "chain/valid" false (fun () ->
            "Full_fusion decision fails validation: " ^ e)
      | Ok t ->
        check ctx "chain/valid" (t = traffic) (fun () ->
            Printf.sprintf "decision traffic %d but eval says %d" traffic t));
      (* three-way closure: the analytic whole-chain traffic equals the
         simulated traffic of every external (non-intermediate) operand *)
      let ops = Chain.ops chain in
      let last = List.length ops - 1 in
      let sim_external =
        List.fold_left ( + ) 0
          (List.mapi
             (fun i (op, s) ->
               let c = Sim.eval op s in
               let b = c.Cost.b.Cost.traffic in
               if i = 0 then c.Cost.a.Cost.traffic + b
               else if i = last then b + c.Cost.c.Cost.traffic
               else b)
             (List.combine ops fused.Multi_fusion.schedules))
      in
      check ctx "chain/sim" (sim_external = traffic) (fun () ->
          Printf.sprintf "analytic chain traffic %d but simulated %d" traffic
            sim_external))

let run ?(mapper = Principles) p : outcome =
  let ctx = { checks = 0; failures = [] } in
  let buf = Problem.buffer p in
  let rng = Rng.make (seed_of p) in
  List.iteri
    (fun i op ->
      let tag = Printf.sprintf "op%d" (i + 1) in
      intra_checks ctx ~mapper tag op buf;
      ragged_checks ctx rng tag op)
    (Problem.ops p);
  (match Problem.pair p with
  | Some pair -> pair_checks ctx ~mapper pair buf
  | None -> ());
  (match Problem.chain p with
  | Some chain -> chain_checks ctx chain buf
  | None -> ());
  { checks = ctx.checks; failures = List.rev ctx.failures }

let failure_names (o : outcome) =
  List.sort_uniq compare (List.map (fun f -> f.check) o.failures)
