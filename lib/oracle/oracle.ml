(* The oracle runner: generate seeded problems, run the three-way
   conformance checks on each, and shrink any failure to a minimal
   counterexample with a copy-pasteable repro line. *)

open Fusecu_core

type counterexample = {
  index : int;  (** 1-based case index within the run *)
  original : Problem.t;
  shrunk : Problem.t;
  failures : Check.failure list;  (** failures on the shrunk problem *)
}

type report = {
  cases : int;
  checks : int;
  counterexamples : counterexample list;
  by_regime : (string * int) list;
  by_shape : (string * int) list;
}

let ok r = r.counterexamples = []

let shape_name (p : Problem.t) =
  match p.shape with
  | Problem.Single -> "single"
  | Problem.Pair _ -> "pair"
  | Problem.Chain3 _ -> "chain3"

let tally tbl key =
  Hashtbl.replace tbl key
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Shrinking must reproduce one of the *same* named checks, so it
   cannot wander off the original bug onto an unrelated one. *)
let shrink_failure ~mapper index p (o : Check.outcome) =
  let names = Check.failure_names o in
  let still_fails q =
    let oq = Check.run ~mapper q in
    List.exists (fun n -> List.mem n names) (Check.failure_names oq)
  in
  let shrunk = Shrink.minimize p ~still_fails in
  let failures =
    let final = Check.run ~mapper shrunk in
    if final.Check.failures = [] then o.Check.failures else final.Check.failures
  in
  { index; original = p; shrunk; failures }

let run ?(log = ignore) ?(mapper = Check.Principles) ~cases ~seed
    ?(max_dim = 24) () =
  let rng = Rng.make seed in
  let regimes = Hashtbl.create 7 in
  let shapes = Hashtbl.create 7 in
  let checks = ref 0 in
  let counterexamples = ref [] in
  for index = 1 to cases do
    let p = Gen.problem rng ~max_dim in
    tally shapes (shape_name p);
    tally regimes
      (Regime.to_string (Regime.classify (Problem.op1 p) (Problem.buffer p)));
    let o = Check.run ~mapper p in
    checks := !checks + o.Check.checks;
    if o.Check.failures <> [] then begin
      let ce = shrink_failure ~mapper index p o in
      counterexamples := ce :: !counterexamples;
      log
        (Printf.sprintf "case %d diverged: %s (shrunk to %s; checks: %s)" index
           (Problem.to_spec p) (Problem.to_spec ce.shrunk)
           (String.concat ", " (Check.failure_names o)))
    end
  done;
  {
    cases;
    checks = !checks;
    counterexamples = List.rev !counterexamples;
    by_regime = sorted_bindings regimes;
    by_shape = sorted_bindings shapes;
  }

let check_spec ?mapper spec =
  Result.map (fun p -> (p, Check.run ?mapper p)) (Problem.of_spec spec)

let pp_tally ppf bindings =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v)
    ppf bindings

let pp_failure ppf (f : Check.failure) =
  Format.fprintf ppf "[%s] %s" f.Check.check f.Check.detail

let pp_counterexample ppf ce =
  Format.fprintf ppf
    "@[<v 2>case %d: %s@,shrunk: %s@,repro:  fusecu_opt check --repro %s@,%a@]"
    ce.index (Problem.to_spec ce.original) (Problem.to_spec ce.shrunk)
    (Problem.to_spec ce.shrunk)
    (Format.pp_print_list pp_failure)
    ce.failures

let pp_report ppf r =
  Format.fprintf ppf "@[<v>oracle: %d cases, %d checks, %d divergence%s@,"
    r.cases r.checks
    (List.length r.counterexamples)
    (if List.length r.counterexamples = 1 then "" else "s");
  Format.fprintf ppf "@[<hov 2>shapes:@ %a@]@," pp_tally r.by_shape;
  Format.fprintf ppf "@[<hov 2>regimes (op1):@ %a@]" pp_tally r.by_regime;
  List.iter (fun ce -> Format.fprintf ppf "@,%a" pp_counterexample ce)
    r.counterexamples;
  Format.fprintf ppf "@]"
