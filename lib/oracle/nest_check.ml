open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_nest

(* Differential conformance oracle for the projective loop-nest IR —
   the `check --nests` leg. Per problem (a nest kind plus a buffer):

   - branch-and-bound vs exhaustive: Dse.Nest_bnb must reproduce
     Search.exhaustive bit-for-bit (feasibility, cost, tiling index,
     order rank, schedule);
   - analytic vs simulated: Nest.eval must equal Nsim.eval per tensor
     on the winner and on random ragged lattice schedules;
   - bounds: the winner never beats Bound.ideal, and Bound.penalized
     at the winner's actual trip counts stays admissible;
   - matmul problems additionally cross-check the winner against the
     legacy Dse.Exhaustive optimum (total and tiles);
   - conv problems pin the iteration count to Conv.macs and the
     halo-exact input ideal at or below the im2col-inflated one.

   Ground truth uses the Divisors lattice — the service hot path's
   lattice — so the soak exercises exactly what production searches. *)

type kind =
  | Mm of { m : int; k : int; l : int }
  | Conv of Conv.t
  | Bmm of { b : int; m : int; k : int; l : int }
  | Gmm of { g : int; hd : int; m : int; k : int; l : int }
  | Attn of { q : int; n : int; d : int; dv : int }

type problem = { kind : kind; bs : int }

let lattice = Search.Divisors

let kind_name = function
  | Mm _ -> "mm"
  | Conv _ -> "conv"
  | Bmm _ -> "bmm"
  | Gmm _ -> "gmm"
  | Attn _ -> "attn"

let to_nest p =
  match p.kind with
  | Mm { m; k; l } -> Lower.of_matmul (Matmul.make ~name:"mm" ~m ~k ~l ())
  | Conv cv -> Lower.of_conv cv
  | Bmm { b; m; k; l } -> Lower.batched_mm ~b ~m ~k ~l ()
  | Gmm { g; hd; m; k; l } -> Lower.grouped_mm ~groups:g ~heads:hd ~m ~k ~l ()
  | Attn { q; n; d; dv } -> Lower.attention_pair ~seq_q:q ~seq_k:n ~d ~dv ()

let to_spec p =
  let fields =
    match p.kind with
    | Mm { m; k; l } -> [ ("m", m); ("k", k); ("l", l) ]
    | Conv cv ->
      [ ("n", cv.Conv.n); ("c", cv.Conv.c); ("h", cv.Conv.h); ("w", cv.Conv.w);
        ("k", cv.Conv.k); ("r", cv.Conv.r); ("s", cv.Conv.s);
        ("st", cv.Conv.stride); ("di", cv.Conv.dilation);
        ("pa", cv.Conv.padding) ]
    | Bmm { b; m; k; l } -> [ ("b", b); ("m", m); ("k", k); ("l", l) ]
    | Gmm { g; hd; m; k; l } ->
      [ ("g", g); ("hd", hd); ("m", m); ("k", k); ("l", l) ]
    | Attn { q; n; d; dv } -> [ ("q", q); ("n", n); ("d", d); ("dv", dv) ]
  in
  String.concat ","
    (Printf.sprintf "kind=%s" (kind_name p.kind)
     :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fields
    @ [ Printf.sprintf "bs=%d" p.bs ])

let of_spec s =
  let ( let* ) = Result.bind in
  let* fields =
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "bad field %S" part)
        | Some i ->
          Ok
            ((String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1))
            :: acc))
      (Ok [])
      (String.split_on_char ',' (String.trim s))
  in
  let str name =
    match List.assoc_opt name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %s" name)
  in
  let int name =
    let* v = str name in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %s=%S is not an integer" name v)
  in
  let int_default name d =
    match List.assoc_opt name fields with
    | None -> Ok d
    | Some _ -> int name
  in
  let* kind_s = str "kind" in
  let* bs = int "bs" in
  if bs < 1 then Error "bs must be >= 1"
  else
    let* kind =
      match kind_s with
      | "mm" ->
        let* m = int "m" in
        let* k = int "k" in
        let* l = int "l" in
        if m < 1 || k < 1 || l < 1 then Error "mm dims must be >= 1"
        else Ok (Mm { m; k; l })
      | "conv" ->
        let* n = int "n" in
        let* c = int "c" in
        let* h = int "h" in
        let* w = int "w" in
        let* k = int "k" in
        let* r = int "r" in
        let* s = int "s" in
        let* stride = int_default "st" 1 in
        let* dilation = int_default "di" 1 in
        let* padding = int_default "pa" 0 in
        let* cv =
          Result.map_error
            (fun e -> "conv: " ^ e)
            (Conv.validate ~stride ~padding ~dilation ~n ~c ~h ~w ~k ~r ~s ())
        in
        Ok (Conv cv)
      | "bmm" ->
        let* b = int "b" in
        let* m = int "m" in
        let* k = int "k" in
        let* l = int "l" in
        if b < 1 || m < 1 || k < 1 || l < 1 then Error "bmm dims must be >= 1"
        else Ok (Bmm { b; m; k; l })
      | "gmm" ->
        let* g = int "g" in
        let* hd = int "hd" in
        let* m = int "m" in
        let* k = int "k" in
        let* l = int "l" in
        if g < 1 || hd < 1 || m < 1 || k < 1 || l < 1 then
          Error "gmm dims must be >= 1"
        else Ok (Gmm { g; hd; m; k; l })
      | "attn" ->
        let* q = int "q" in
        let* n = int "n" in
        let* d = int "d" in
        let* dv = int_default "dv" 0 in
        let dv = if dv = 0 then d else dv in
        if q < 1 || n < 1 || d < 1 || dv < 1 then
          Error "attn dims must be >= 1"
        else Ok (Attn { q; n; d; dv })
      | other -> Error (Printf.sprintf "unknown kind %S" other)
    in
    Ok { kind; bs }

let equal a b = to_spec a = to_spec b

let pp fmt p = Format.pp_print_string fmt (to_spec p)

(* Shrinking order: dimension sum, then buffer. *)
let size p =
  let dims =
    match p.kind with
    | Mm { m; k; l } -> m + k + l
    | Conv cv ->
      cv.Conv.n + cv.Conv.c + cv.Conv.h + cv.Conv.w + cv.Conv.k + cv.Conv.r
      + cv.Conv.s + cv.Conv.stride + cv.Conv.dilation + cv.Conv.padding
    | Bmm { b; m; k; l } -> b + m + k + l
    | Gmm { g; hd; m; k; l } -> g + hd + m + k + l
    | Attn { q; n; d; dv } -> q + n + d + dv
  in
  (dims, p.bs)

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)

type failure = { check : string; detail : string }

type outcome = { checks : int; failures : failure list }

let failure_names (o : outcome) =
  List.sort_uniq compare (List.map (fun f -> f.check) o.failures)

type ctx = { mutable checks : int; mutable failures : failure list }

let check ctx name ok detail =
  ctx.checks <- ctx.checks + 1;
  if not ok then
    ctx.failures <- { check = name; detail = detail () } :: ctx.failures

(* Deterministic per-problem stream: FNV-1a over the spec, so a
   problem's verdict is independent of its position in a run. *)
let seed_of p =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int)
    (to_spec p);
  !h

let sim_points_cap = 1 lsl 17

let random_schedule rng nest =
  let n = Nest.rank nest in
  let tiles =
    Array.init n (fun i ->
        Rng.choose rng (Fusecu_util.Arith.divisors nest.Nest.extents.(i)))
  in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  Nest.schedule_make nest ~tiles ~order

let per_equal (a : Nest.per_tensor) (b : Nest.per_tensor) =
  a.Nest.traffic = b.Nest.traffic
  && a.Nest.fetches = b.Nest.fetches
  && a.Nest.revisit = b.Nest.revisit

let sim_vs_analytic ctx ~name nest s =
  if Nest.points nest <= sim_points_cap then begin
    let analytic = Nest.eval nest s in
    let simulated = Nsim.eval nest s in
    check ctx name
      (analytic.Nest.total = simulated.Nest.total
      && Array.for_all2 per_equal analytic.Nest.per simulated.Nest.per)
      (fun () ->
        Printf.sprintf "schedule %s: analytic=%d sim=%d"
          (Nest.schedule_to_string nest s)
          analytic.Nest.total simulated.Nest.total)
  end

let run p =
  let ctx = { checks = 0; failures = [] } in
  let nest = to_nest p in
  let buf = Buffer.make p.bs in
  let capacity = Buffer.elements buf in
  let exh = Search.exhaustive ~lattice nest ~capacity in
  let bnb = Fusecu_dse.Nest_bnb.search ~lattice nest buf in
  (match (exh, bnb) with
  | None, None -> check ctx "nest/bnb-exact" true (fun () -> "")
  | Some e, Some g ->
    check ctx "nest/bnb-exact"
      (e.Search.cost.Nest.total = g.Search.cost.Nest.total
      && e.Search.tiling_index = g.Search.tiling_index
      && e.Search.order_rank = g.Search.order_rank
      && e.Search.schedule.Nest.tiles = g.Search.schedule.Nest.tiles
      && e.Search.schedule.Nest.order = g.Search.schedule.Nest.order)
      (fun () ->
        Printf.sprintf "exhaustive %s total=%d ti=%d rk=%d; bnb %s total=%d ti=%d rk=%d"
          (Nest.schedule_to_string nest e.Search.schedule)
          e.Search.cost.Nest.total e.Search.tiling_index e.Search.order_rank
          (Nest.schedule_to_string nest g.Search.schedule)
          g.Search.cost.Nest.total g.Search.tiling_index g.Search.order_rank)
  | Some e, None ->
    check ctx "nest/bnb-exact" false (fun () ->
        Printf.sprintf "bnb missed feasible %s"
          (Nest.schedule_to_string nest e.Search.schedule))
  | None, Some g ->
    check ctx "nest/bnb-exact" false (fun () ->
        Printf.sprintf "bnb invented %s on an infeasible space"
          (Nest.schedule_to_string nest g.Search.schedule)));
  (match exh with
  | None -> ()
  | Some e ->
    let s = e.Search.schedule in
    check ctx "nest/winner-valid" (Nest.valid nest s) (fun () ->
        Nest.schedule_to_string nest s);
    check ctx "nest/winner-fits"
      (Buffer.fits buf (Nest.footprint nest s))
      (fun () ->
        Printf.sprintf "footprint %d > capacity %d" (Nest.footprint nest s)
          capacity);
    check ctx "nest/bound-ideal"
      (e.Search.cost.Nest.total >= Bound.ideal nest)
      (fun () ->
        Printf.sprintf "total %d < ideal %d" e.Search.cost.Nest.total
          (Bound.ideal nest));
    let trips = Array.init (Nest.rank nest) (fun i -> Nest.trips nest s i) in
    check ctx "nest/bound-admissible"
      (Bound.penalized nest ~trips <= e.Search.cost.Nest.total)
      (fun () ->
        Printf.sprintf "penalized %d > total %d"
          (Bound.penalized nest ~trips)
          e.Search.cost.Nest.total);
    sim_vs_analytic ctx ~name:"nest/analytic-sim" nest s);
  (* ragged random schedules need no feasibility: the cost contract
     holds on the whole lattice *)
  let rng = Rng.make (seed_of p) in
  for _ = 1 to 4 do
    sim_vs_analytic ctx ~name:"nest/analytic-sim" nest
      (random_schedule rng nest)
  done;
  (match p.kind with
  | Mm { m; k; l } ->
    let op = Matmul.make ~name:"mm" ~m ~k ~l () in
    let legacy =
      Fusecu_dse.Exhaustive.search ~lattice:Fusecu_dse.Space.Divisors
        ~pool:Fusecu_util.Pool.sequential op buf
    in
    (match (exh, legacy) with
    | None, None -> check ctx "nest/legacy-exact" true (fun () -> "")
    | Some e, Some lr ->
      let lt = lr.Fusecu_dse.Exhaustive.schedule.Schedule.tiling in
      check ctx "nest/legacy-exact"
        (e.Search.cost.Nest.total = lr.Fusecu_dse.Exhaustive.cost.Cost.total
        && e.Search.schedule.Nest.tiles
           = [| Tiling.get lt Dim.M; Tiling.get lt Dim.K; Tiling.get lt Dim.L |])
        (fun () ->
          Printf.sprintf "nest total=%d tiles=%s; legacy total=%d %s"
            e.Search.cost.Nest.total
            (Nest.schedule_to_string nest e.Search.schedule)
            lr.Fusecu_dse.Exhaustive.cost.Cost.total
            (Schedule.to_string lr.Fusecu_dse.Exhaustive.schedule))
    | Some _, None ->
      check ctx "nest/legacy-exact" false (fun () ->
          "nest feasible where legacy space is empty")
    | None, Some _ ->
      check ctx "nest/legacy-exact" false (fun () ->
          "legacy feasible where nest space is empty"))
  | Conv cv ->
    check ctx "nest/conv-macs"
      (Nest.points nest = Conv.macs cv)
      (fun () ->
        Printf.sprintf "points %d <> macs %d" (Nest.points nest) (Conv.macs cv));
    (* im2col materializes one A row per output position, so its A is
       at least the input positions actually read — but only when no
       input is skipped (stride within the dilated kernel span) and
       there is no padding (im2col stores real elements; the direct
       nest models the padded activation window) *)
    if
      cv.Conv.padding = 0
      && cv.Conv.stride <= Conv.effective_r cv
      && cv.Conv.stride <= Conv.effective_s cv
    then
      check ctx "nest/conv-im2col-ideal"
        (Bound.ideal nest <= Bound.ideal (Lower.of_conv_im2col cv))
        (fun () ->
          Printf.sprintf "direct ideal %d > im2col ideal %d" (Bound.ideal nest)
            (Bound.ideal (Lower.of_conv_im2col cv)))
  | Bmm _ | Gmm _ | Attn _ -> ());
  ({ checks = ctx.checks; failures = List.rev ctx.failures } : outcome)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

(* Dimensions biased small (ragged-edge territory, cheap exhaustive
   ground truth). Conv parameters are drawn avoid-but-test style: the
   raw draw may violate the output-shape constraints; invalid combos
   are discarded through Conv.validate — the boundary tests pin that
   they are rejected, the oracle only soaks valid operators. *)
let gen rng ~max_dim =
  let dim () = Rng.range rng ~lo:1 ~hi:max_dim in
  let small cap = Rng.range rng ~lo:1 ~hi:(min cap max_dim) in
  let rec conv tries =
    if tries = 0 then
      Conv (Conv.make ~n:1 ~c:1 ~h:3 ~w:3 ~k:1 ~r:1 ~s:1 ())
    else
      let h = Rng.range rng ~lo:2 ~hi:(max 4 max_dim) in
      let w = Rng.range rng ~lo:2 ~hi:(max 4 max_dim) in
      match
        Conv.validate ~n:(small 3) ~c:(small 3) ~h ~w ~k:(small 3)
          ~r:(small 3) ~s:(small 3)
          ~stride:(Rng.range rng ~lo:1 ~hi:2)
          ~dilation:(Rng.range rng ~lo:1 ~hi:2)
          ~padding:(Rng.int rng 2) ()
      with
      | Ok cv -> Conv cv
      | Error _ -> conv (tries - 1)
  in
  let kind =
    match Rng.int rng 5 with
    | 0 -> Mm { m = dim (); k = dim (); l = dim () }
    | 1 -> conv 64
    | 2 -> Bmm { b = small 3; m = dim (); k = dim (); l = dim () }
    | 3 -> Gmm { g = small 3; hd = small 3; m = small 5; k = small 5; l = small 5 }
    | _ ->
      Attn
        { q = dim (); n = dim (); d = small 6;
          dv = (if Rng.bool rng then small 6 else 0) }
  in
  let kind =
    match kind with
    | Attn a -> Attn { a with dv = (if a.dv = 0 then a.d else a.dv) }
    | k -> k
  in
  let skeleton = { kind; bs = 1 } in
  let nest = to_nest skeleton in
  let ideal = Bound.ideal nest in
  let min_fp = List.length nest.Nest.tensors in
  let bs =
    match Rng.int rng 6 with
    | 0 -> min_fp
    | 1 -> max 1 (min_fp - 1) (* often infeasible: the None x None leg *)
    | 2 -> max min_fp (ideal / 4)
    | 3 -> max min_fp (ideal / 2)
    | 4 -> ideal + 8
    | _ -> Rng.range rng ~lo:min_fp ~hi:(max (min_fp + 1) ideal)
  in
  { kind; bs }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let smaller v = List.filter (fun x -> x >= 1 && x < v) [ 1; v / 2; v - 1 ]

let proposals p =
  let with_kind kind = { p with kind } in
  let dims =
    match p.kind with
    | Mm { m; k; l } ->
      List.concat
        [ List.map (fun m -> with_kind (Mm { m; k; l })) (smaller m);
          List.map (fun k -> with_kind (Mm { m; k; l })) (smaller k);
          List.map (fun l -> with_kind (Mm { m; k; l })) (smaller l) ]
    | Conv cv ->
      let rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding =
        match
          Conv.validate ~stride ~padding ~dilation ~n ~c ~h ~w ~k ~r ~s ()
        with
        | Ok cv -> Some (with_kind (Conv cv))
        | Error _ -> None
      in
      let { Conv.n; c; h; w; k; r; s; stride; padding; dilation; _ } = cv in
      List.filter_map Fun.id
        (List.concat
           [ List.map (fun n -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller n);
             List.map (fun c -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller c);
             List.map (fun h -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller h);
             List.map (fun w -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller w);
             List.map (fun k -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller k);
             List.map (fun r -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller r);
             List.map (fun s -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller s);
             List.map (fun stride -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller stride);
             List.map (fun dilation -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding) (smaller dilation);
             List.map (fun padding -> rebuild ~n ~c ~h ~w ~k ~r ~s ~stride ~dilation ~padding)
               (List.filter (fun x -> x >= 0 && x < padding) [ 0; padding - 1 ]) ])
    | Bmm { b; m; k; l } ->
      List.concat
        [ List.map (fun b -> with_kind (Bmm { b; m; k; l })) (smaller b);
          List.map (fun m -> with_kind (Bmm { b; m; k; l })) (smaller m);
          List.map (fun k -> with_kind (Bmm { b; m; k; l })) (smaller k);
          List.map (fun l -> with_kind (Bmm { b; m; k; l })) (smaller l) ]
    | Gmm { g; hd; m; k; l } ->
      List.concat
        [ List.map (fun g -> with_kind (Gmm { g; hd; m; k; l })) (smaller g);
          List.map (fun hd -> with_kind (Gmm { g; hd; m; k; l })) (smaller hd);
          List.map (fun m -> with_kind (Gmm { g; hd; m; k; l })) (smaller m);
          List.map (fun k -> with_kind (Gmm { g; hd; m; k; l })) (smaller k);
          List.map (fun l -> with_kind (Gmm { g; hd; m; k; l })) (smaller l) ]
    | Attn { q; n; d; dv } ->
      List.concat
        [ List.map (fun q -> with_kind (Attn { q; n; d; dv })) (smaller q);
          List.map (fun n -> with_kind (Attn { q; n; d; dv })) (smaller n);
          List.map (fun d -> with_kind (Attn { q; n; d; dv })) (smaller d);
          List.map (fun dv -> with_kind (Attn { q; n; d; dv })) (smaller dv) ]
  in
  let bufs = List.map (fun bs -> { p with bs }) (smaller p.bs) in
  List.sort (fun a b -> compare (size a) (size b)) (dims @ bufs)

let minimize ?(budget = 200) p ~still_fails =
  let budget = ref budget in
  let test q =
    if !budget <= 0 then false
    else begin
      decr budget;
      still_fails q
    end
  in
  let rec go p =
    match List.find_opt test (proposals p) with
    | Some q -> go q
    | None -> p
  in
  go p

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

type counterexample = {
  index : int;
  original : problem;
  shrunk : problem;
  failures : failure list;
}

type report = {
  cases : int;
  checks : int;
  counterexamples : counterexample list;
  by_kind : (string * int) list;
}

let ok r = r.counterexamples = []

let shrink_failure index p (o : outcome) =
  let names = failure_names o in
  let still_fails q =
    List.exists (fun n -> List.mem n names) (failure_names (run q))
  in
  let shrunk = minimize p ~still_fails in
  let failures =
    let final = run shrunk in
    if final.failures = [] then o.failures else final.failures
  in
  { index; original = p; shrunk; failures }

let soak ?(log = ignore) ~cases ~seed ?(max_dim = 8) () =
  let rng = Rng.make seed in
  let kinds = Hashtbl.create 7 in
  let checks = ref 0 in
  let counterexamples = ref [] in
  for index = 1 to cases do
    let p = gen rng ~max_dim in
    Hashtbl.replace kinds (kind_name p.kind)
      (1 + Option.value ~default:0 (Hashtbl.find_opt kinds (kind_name p.kind)));
    let o = run p in
    checks := !checks + o.checks;
    if o.failures <> [] then begin
      let ce = shrink_failure index p o in
      counterexamples := ce :: !counterexamples;
      log
        (Printf.sprintf "nest case %d diverged: %s (shrunk to %s; checks: %s)"
           index (to_spec p) (to_spec ce.shrunk)
           (String.concat ", " (failure_names o)))
    end
  done;
  {
    cases;
    checks = !checks;
    counterexamples = List.rev !counterexamples;
    by_kind =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []);
  }

let check_spec s =
  Result.map (fun p -> (p, run p)) (of_spec s)

let pp_counterexample fmt ce =
  Format.fprintf fmt "@[<v2>case %d: %s@ shrunk: %s@ repro: fusecu_opt check --nest-repro %s@ %a@]"
    ce.index (to_spec ce.original) (to_spec ce.shrunk) (to_spec ce.shrunk)
    (Format.pp_print_list (fun fmt f ->
         Format.fprintf fmt "%s: %s" f.check f.detail))
    ce.failures

let pp_report fmt r =
  Format.fprintf fmt "@[<v>nest oracle: %d cases, %d checks, %d divergences@ by kind: %s@ %a@]"
    r.cases r.checks
    (List.length r.counterexamples)
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.by_kind))
    (Format.pp_print_list pp_counterexample)
    r.counterexamples
