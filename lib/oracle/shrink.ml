(* Greedy counterexample minimization: propose strictly simpler
   problems (fewer operators, smaller dims, smaller buffer), keep the
   first proposal on which the failure reproduces, repeat to a
   fixpoint. "Reproduces" means the shrunk problem fails at least one
   of the same named checks — shrinking is not allowed to wander off to
   a different bug. *)

let smaller_dims v =
  List.sort_uniq compare (List.filter (fun x -> x >= 1 && x < v) [ 1; v / 2; v - 1 ])

let smaller_buffers (p : Problem.t) =
  let open Fusecu_core in
  let anchors =
    let th = Regime.thresholds (Problem.op1 p) in
    [ th.tiny_max; th.small_max; th.medium_max + 1 ]
  in
  List.sort_uniq compare
    (List.filter (fun b -> b >= 3 && b < p.bs) ([ 3; p.bs / 2; p.bs - 1 ] @ anchors))

let proposals (p : Problem.t) =
  let shape_cuts =
    match p.shape with
    | Problem.Single -> []
    | Problem.Pair _ -> [ { p with Problem.shape = Problem.Single } ]
    | Problem.Chain3 { l2; l3 } ->
      [ { p with Problem.shape = Problem.Pair { l2 } };
        { p with Problem.shape = Problem.Pair { l2 = l3 } };
        { p with Problem.shape = Problem.Single } ]
  in
  let dim_cuts =
    List.map (fun m -> { p with Problem.m }) (smaller_dims p.m)
    @ List.map (fun k -> { p with Problem.k }) (smaller_dims p.k)
    @ List.map (fun l -> { p with Problem.l }) (smaller_dims p.l)
    @ (match p.shape with
      | Problem.Single -> []
      | Problem.Pair { l2 } ->
        List.map
          (fun l2 -> { p with Problem.shape = Problem.Pair { l2 } })
          (smaller_dims l2)
      | Problem.Chain3 { l2; l3 } ->
        List.map
          (fun l2 -> { p with Problem.shape = Problem.Chain3 { l2; l3 } })
          (smaller_dims l2)
        @ List.map
            (fun l3 -> { p with Problem.shape = Problem.Chain3 { l2; l3 } })
            (smaller_dims l3))
  in
  let buffer_cuts = List.map (fun bs -> { p with Problem.bs }) (smaller_buffers p) in
  List.sort
    (fun a b -> compare (Problem.size a) (Problem.size b))
    (shape_cuts @ dim_cuts @ buffer_cuts)

let minimize ?(budget = 200) p ~still_fails =
  let evals = ref 0 in
  let rec go p =
    let next =
      List.find_opt
        (fun candidate ->
          !evals < budget
          && begin
               incr evals;
               still_fails candidate
             end)
        (proposals p)
    in
    match next with Some q -> go q | None -> p
  in
  go p
