open Fusecu_tensor
open Fusecu_core
open Fusecu_util

(* Dimension sizes biased toward small values: divergences live on
   ragged boundaries (dims that don't divide, tiles of 1, dims of 1),
   and exhaustive ground truth is cheap there. *)
let dim rng ~max_dim =
  if Rng.int rng 4 = 0 then Rng.range rng ~lo:1 ~hi:max_dim
  else Rng.range rng ~lo:1 ~hi:(max 2 (max_dim / 2))

let shape rng ~max_dim =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> Problem.Single
  | 4 | 5 | 6 -> Problem.Pair { l2 = dim rng ~max_dim }
  | _ when Rng.bool rng -> Problem.Pair { l2 = dim rng ~max_dim }
  | _ -> Problem.Chain3 { l2 = dim rng ~max_dim; l3 = dim rng ~max_dim }

(* Buffer sizes deliberately concentrated on the regime boundaries of
   the producer (Dmin^2/4, Dmin^2/2, the Three-NRA feasibility edge),
   the minimum feasible footprint, and the unbounded-buffer cap, with a
   uniform backstop over the whole interesting range. *)
let buffer_size rng (p : Problem.t) =
  let op = Problem.op1 p in
  let th = Regime.thresholds op in
  let cap =
    Arith.sum (List.map Matmul.ideal_ma (Problem.ops p))
  in
  let anchors =
    List.concat_map
      (fun edge -> [ edge - 1; edge; edge + 1 ])
      [ th.tiny_max; th.small_max; th.medium_max + 1 ]
    @ [ 3; 4; cap; cap + 3 ]
  in
  let anchors = List.filter (fun b -> b >= 3) anchors in
  if Rng.int rng 3 = 0 then Rng.range rng ~lo:3 ~hi:(max 3 (cap + 3))
  else Rng.choose rng anchors

let problem rng ~max_dim =
  let m = dim rng ~max_dim and k = dim rng ~max_dim and l = dim rng ~max_dim in
  let shape = shape rng ~max_dim in
  let skeleton = { Problem.m; k; l; shape; bs = 3 } in
  { skeleton with Problem.bs = buffer_size rng skeleton }
