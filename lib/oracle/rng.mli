(** Deterministic pseudo-random stream for the differential oracle
    (SplitMix64). Unlike [Stdlib.Random], the sequence is pinned by
    this module forever, so a [(seed, case index)] pair printed in a CI
    log reproduces the same problem on any OCaml version. *)

type t

val make : int -> t

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)]. [bound > 0]. *)

val range : t -> lo:int -> hi:int -> int
(** Uniform-ish in the inclusive range. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform pick; raises [Invalid_argument] on an empty list. *)

val split : t -> t
(** An independent stream derived from the current state. *)
