(** Greedy minimization of failing problems to (locally) minimal
    counterexamples. *)

val proposals : Problem.t -> Problem.t list
(** Strictly simpler variants of a problem, simplest first: drop
    operators, shrink each dimension (to 1, half, minus one), shrink
    the buffer (to 3, half, minus one, and the regime anchors below
    it). *)

val minimize : ?budget:int -> Problem.t -> still_fails:(Problem.t -> bool)
  -> Problem.t
(** Repeatedly replace the problem with the first simpler variant on
    which [still_fails] holds, until none does (or [budget] predicate
    evaluations, default 200, are spent). The caller's [still_fails]
    should demand a failure of one of the {e same} checks, so shrinking
    cannot wander to a different bug. *)
