open Fusecu_tensor
open Fusecu_loopnest

type shape = Single | Pair of { l2 : int } | Chain3 of { l2 : int; l3 : int }

type t = { m : int; k : int; l : int; shape : shape; bs : int }

let op1 p = Matmul.make ~name:"p" ~m:p.m ~k:p.k ~l:p.l ()

let ops p =
  match p.shape with
  | Single -> [ op1 p ]
  | Pair { l2 } -> [ op1 p; Matmul.make ~name:"c" ~m:p.m ~k:p.l ~l:l2 () ]
  | Chain3 { l2; l3 } ->
    [ op1 p;
      Matmul.make ~name:"c" ~m:p.m ~k:p.l ~l:l2 ();
      Matmul.make ~name:"d" ~m:p.m ~k:l2 ~l:l3 () ]

let pair p =
  match ops p with [ a; b ] -> Some (Fused.make_pair_exn a b) | _ -> None

let chain p =
  match p.shape with
  | Chain3 { l2; l3 } -> Some (Chain.of_dims ~name:"oracle" ~m:p.m [ p.k; p.l; l2; l3 ])
  | Single | Pair _ -> None

let buffer p = Buffer.make p.bs

let to_spec p =
  let base = Printf.sprintf "m=%d,k=%d,l=%d" p.m p.k p.l in
  let shape =
    match p.shape with
    | Single -> ""
    | Pair { l2 } -> Printf.sprintf ",l2=%d" l2
    | Chain3 { l2; l3 } -> Printf.sprintf ",l2=%d,l3=%d" l2 l3
  in
  Printf.sprintf "%s%s,bs=%d" base shape p.bs

let of_spec s =
  let ( let* ) = Result.bind in
  let parse_field acc field =
    let* acc = acc in
    match String.split_on_char '=' (String.trim field) with
    | [ key; value ] -> (
      match int_of_string_opt (String.trim value) with
      | None -> Error (Printf.sprintf "bad integer in %S" field)
      | Some v ->
        if v < 1 then Error (Printf.sprintf "%s must be >= 1" key)
        else (
          match String.trim key with
          | "m" | "k" | "l" | "l2" | "l3" | "bs" as k -> Ok ((k, v) :: acc)
          | k -> Error (Printf.sprintf "unknown field %S" k)))
    | _ -> Error (Printf.sprintf "expected key=value, got %S" field)
  in
  let* fields = List.fold_left parse_field (Ok []) (String.split_on_char ',' s) in
  let get k = List.assoc_opt k fields in
  let require k =
    match get k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %s" k)
  in
  let* m = require "m" in
  let* k = require "k" in
  let* l = require "l" in
  let* bs = require "bs" in
  match (get "l2", get "l3") with
  | None, None -> Ok { m; k; l; shape = Single; bs }
  | Some l2, None -> Ok { m; k; l; shape = Pair { l2 }; bs }
  | Some l2, Some l3 -> Ok { m; k; l; shape = Chain3 { l2; l3 }; bs }
  | None, Some _ -> Error "l3 without l2"

let pp fmt p = Format.pp_print_string fmt (to_spec p)

let equal (a : t) b = a = b

(* Lexicographic "simplicity" used by the shrinker: fewer operators
   first, then smaller dimensions, then a smaller buffer. *)
let size p =
  let dims =
    match p.shape with
    | Single -> p.m + p.k + p.l
    | Pair { l2 } -> p.m + p.k + p.l + l2
    | Chain3 { l2; l3 } -> p.m + p.k + p.l + l2 + l3
  in
  let arity =
    match p.shape with Single -> 1 | Pair _ -> 2 | Chain3 _ -> 3
  in
  (arity, dims, p.bs)
