(** A minimal, dependency-free JSON codec for the planning service's
    wire protocol ({!Fusecu_service}).

    The value model distinguishes [Int] from [Float] (the service's
    payloads are overwhelmingly integer counts, and integer traffic
    numbers must survive a round trip exactly): a numeric literal parses
    to [Int] when it has no fraction or exponent part and fits in an
    OCaml [int], to [Float] otherwise. Printing is compact (no
    whitespace), deterministic, and inverse to parsing:
    [parse (print v) = Ok v] for every value built of finite floats.

    Not a general-purpose JSON library: no streaming, no line/column
    tracking beyond a byte offset, objects are plain association lists
    in insertion order (duplicate keys are preserved; {!member} returns
    the first). That is all the newline-delimited request protocol
    needs, and it keeps the opam footprint at zero. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; [Int] and [Float] never compare equal (the
    codec keeps them distinct), floats compare with [Float.equal]. *)

(** {1 Printing} *)

val print : t -> string
(** Compact rendering. Strings are escaped per RFC 8259 (control
    characters as [\u00XX]); floats print with the shortest decimal
    representation that parses back to the same value, always containing
    a ['.'] or exponent so they re-parse as [Float]. Raises
    [Invalid_argument] on NaN or infinite floats — JSON cannot represent
    them. *)

val print_hum : t -> string
(** Two-space-indented rendering for humans (metrics dumps). Same
    escaping rules as {!print}. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Parse exactly one JSON value (leading/trailing whitespace allowed;
    anything else after the value is an error). Errors carry the byte
    offset, e.g. ["byte 7: unterminated string"]. *)

(** {1 Accessors}

    Small combinators used by the protocol layer; all return [Error]
    with a descriptive message rather than raising. *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] for other constructors. *)

val to_int : t -> (int, string) result
(** [Int n] only (the protocol never reads floats where counts are
    expected). *)

val to_float : t -> (float, string) result
(** [Float f] or [Int n] (widened). *)

val to_string_v : t -> (string, string) result

val to_bool : t -> (bool, string) result

val to_list : t -> (t list, string) result
