let ceil_div a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let isqrt n =
  if n < 0 then invalid_arg "Arith.isqrt: negative argument";
  if n < 2 then n
  else begin
    (* Newton iteration on the float estimate, then fix up the boundary.
       The fix-up compares via division ([r*r <= n] iff [r <= n/r] for
       positive ints) so that [n] near [max_int] cannot overflow the
       squaring: the float estimate for such [n] is ~2^31 and
       [(r+1)*(r+1)] would wrap negative. *)
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r > n / !r do decr r done;
    while !r + 1 <= n / (!r + 1) do incr r done;
    !r
  end

let divisors n =
  assert (n >= 1);
  let rec loop d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then
      let q = n / d in
      if q = d then loop (d + 1) (d :: small) large
      else loop (d + 1) (d :: small) (q :: large)
    else loop (d + 1) small large
  in
  loop 1 [] []

let mul_sat a b =
  assert (a >= 0 && b >= 0);
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let add_sat a b =
  assert (a >= 0 && b >= 0);
  if a > max_int - b then max_int else a + b

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Largest power of two an OCaml int can hold (2^61 on 64-bit). *)
let max_pow2 = (max_int lsr 1) + 1

let next_pow2 n =
  if n < 1 then invalid_arg "Arith.next_pow2: argument must be >= 1";
  if n > max_pow2 then
    (* [p * 2] would wrap negative and the loop below would never
       terminate; there is no representable power of two >= n. *)
    invalid_arg "Arith.next_pow2: no representable power of two >= n";
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let pow2s_upto n =
  assert (n >= 1);
  let rec loop p acc = if p > n then List.rev acc else loop (p * 2) (p :: acc) in
  loop 1 []

let gcd a b =
  (* Total on all ints: gcd is sign-insensitive, so work on absolute
     values ([abs min_int = min_int], but Euclid's remainders shrink in
     magnitude immediately, so even that case terminates correctly). *)
  let rec go a b = if b = 0 then a else go b (a mod b) in
  abs (go (abs a) (abs b))

let range lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

let sum = List.fold_left ( + ) 0

let dedup_sorted xs =
  let sorted = List.sort compare xs in
  let rec uniq = function
    | a :: (b :: _ as rest) -> if a = b then uniq rest else a :: uniq rest
    | short -> short
  in
  uniq sorted
