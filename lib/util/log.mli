(** Leveled structured logging as NDJSON lines.

    Every record is one JSON object on one line —
    [{"ts":…,"level":"info","msg":…,…fields}] — written to stderr by
    default or to a file ({!set_file}); never to stdout, so enabling
    logging cannot perturb the byte-deterministic response stream of the
    planning service or the golden CLI transcripts (DESIGN.md §6b).

    The level starts from the [FUSECU_LOG] environment variable
    ([debug], [info], [warn], [error] or [off]; unset means off) and can
    be overridden programmatically ({!set_level}) or by the [--log-level]
    CLI flag. [FUSECU_LOG_FILE] redirects output to a file at first use.

    Thread-safe: one mutex serializes line emission, so records from
    concurrent connection threads or pool domains never interleave
    mid-line. Timestamps come from the {!Trace} clock, so log records
    and trace spans share a timebase. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> (level option, string) result
(** Case-insensitive; [Ok None] for ["off"]/["none"], [Error] otherwise
    on unknown names. ["warning"] is accepted for [Warn]. *)

val set_level : level option -> unit
(** [None] disables logging entirely. Overrides [FUSECU_LOG]. *)

val current_level : unit -> level option

val enabled : level -> bool
(** Would a record at this level be emitted? *)

val set_file : string -> unit
(** Append records to a file instead of stderr (opened lazily, flushed
    per record; the previous file, if any, is closed). *)

val set_sink : (string -> unit) -> unit
(** Redirect complete NDJSON lines to an arbitrary consumer (tests). *)

val set_shard : int -> unit
(** Tag every subsequent record with a [shard] field. The router calls
    this in each forked backend (and exports [FUSECU_LOG_SHARD] for
    exec'd descendants, read at first use) so merged stderr from a
    fleet stays attributable per shard. *)

val debug : ?fields:(string * Json.t) list -> string -> unit

val info : ?fields:(string * Json.t) list -> string -> unit

val warn : ?fields:(string * Json.t) list -> string -> unit

val error : ?fields:(string * Json.t) list -> string -> unit

val msg : level -> ?fields:(string * Json.t) list -> string -> unit
(** Emit one record if [level] is enabled: [ts] (seconds, collector
    clock), [level], [pid], [shard] (when set), [msg], then [fields] in
    the given order. *)
