(** Small integer arithmetic helpers used throughout the dataflow models.

    All functions operate on non-negative [int]s unless stated otherwise;
    sizes in this code base (tensor elements, memory accesses, MAC counts)
    always fit in OCaml's 63-bit native integers. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded towards positive infinity.
    Requires [a >= 0] and [b > 0]. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] restricts [x] to the inclusive range [\[lo, hi\]].
    Requires [lo <= hi]. *)

val isqrt : int -> int
(** [isqrt n] is the largest [r] with [r * r <= n], for any
    [0 <= n <= max_int] (the boundary fix-up is overflow-safe). Raises
    [Invalid_argument] when [n < 0]. *)

val divisors : int -> int list
(** [divisors n] lists all positive divisors of [n] in increasing order.
    Requires [n >= 1]. *)

val mul_sat : int -> int -> int
(** [mul_sat a b] is [a * b], saturating at [max_int] instead of
    wrapping. Requires [a >= 0] and [b >= 0]. Threshold arithmetic on
    user-supplied dimension sizes (e.g. [Dmin^2] in {!Fusecu_core}'s
    regime classifier) uses this so that absurdly large operators
    degrade to "everything is below the threshold" rather than to a
    negative product. *)

val add_sat : int -> int -> int
(** [add_sat a b] is [a + b], saturating at [max_int]. Requires
    [a >= 0] and [b >= 0]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two. *)

val next_pow2 : int -> int
(** [next_pow2 n] is the smallest power of two [>= n]. Raises
    [Invalid_argument] when [n < 1] or when no power of two [>= n] is
    representable (i.e. [n > 2^61] on 64-bit — see {!max_pow2}). *)

val max_pow2 : int
(** The largest power of two representable in an OCaml [int]
    ([2^61] on 64-bit platforms). *)

val pow2s_upto : int -> int list
(** [pow2s_upto n] lists the powers of two [<= n] in increasing order,
    starting at 1. Requires [n >= 1]. *)

val gcd : int -> int -> int
(** Greatest common divisor; [gcd 0 n = abs n]. Total on negative
    inputs: the result is the (non-negative) gcd of the absolute
    values. *)

val range : int -> int -> int list
(** [range lo hi] is the list [lo; lo+1; ...; hi] ([] when [lo > hi]). *)

val sum : int list -> int
(** Sum of a list of integers. *)

val dedup_sorted : int list -> int list
(** Sort a list in increasing order and remove duplicates. *)
