type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok (Some Debug)
  | "info" -> Ok (Some Info)
  | "warn" | "warning" -> Ok (Some Warn)
  | "error" -> Ok (Some Error)
  | "off" | "none" | "" -> Ok None
  | other ->
    Error
      (Printf.sprintf "unknown log level %S (debug, info, warn, error or off)"
         other)

let mutex = Mutex.create ()

(* [None] until first use or an explicit [set_level]; initialized from
   FUSECU_LOG then. All state below is guarded by [mutex]. *)
let level = ref (None : level option)

let initialized = ref false

(* Shard identity for fleet log attribution: set by the router in its
   forked children ([set_shard]) or inherited via FUSECU_LOG_SHARD so
   merged stderr from a routed fleet stays attributable. Benign-race
   ref: written once at process/child setup, before concurrent
   logging starts. *)
let shard = ref (None : int option)

let set_shard i = shard := Some i

let file = ref (None : out_channel option)

let custom_sink = ref (None : (string -> unit) option)

let close_file_locked () =
  match !file with
  | Some oc ->
    (try close_out oc with Sys_error _ -> ());
    file := None
  | None -> ()

let init_locked () =
  if not !initialized then begin
    initialized := true;
    (match Sys.getenv_opt "FUSECU_LOG" with
    | Some s -> ( match level_of_string s with Ok l -> level := l | Error _ -> ())
    | None -> ());
    (match Sys.getenv_opt "FUSECU_LOG_SHARD" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some i when i >= 0 -> shard := Some i
      | _ -> ())
    | None -> ());
    match Sys.getenv_opt "FUSECU_LOG_FILE" with
    | Some path when path <> "" -> (
      try file := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
      with Sys_error _ -> ())
    | _ -> ()
  end

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let set_level l =
  with_lock (fun () ->
      init_locked ();
      level := l)

let current_level () =
  with_lock (fun () ->
      init_locked ();
      !level)

let enabled lvl =
  match current_level () with
  | None -> false
  | Some min -> severity lvl >= severity min

let set_file path =
  with_lock (fun () ->
      init_locked ();
      close_file_locked ();
      file := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path))

let set_sink sink =
  with_lock (fun () ->
      init_locked ();
      custom_sink := Some sink)

let emit_locked line =
  match !custom_sink with
  | Some sink -> sink line
  | None -> (
    match !file with
    | Some oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc
    | None ->
      output_string stderr line;
      output_char stderr '\n';
      flush stderr)

let msg lvl ?(fields = []) text =
  if enabled lvl then begin
    let identity =
      ("pid", Json.Int (Unix.getpid ()))
      ::
      (match !shard with
      | Some i -> [ ("shard", Json.Int i) ]
      | None -> [])
    in
    let line =
      Json.print
        (Json.Obj
           (("ts", Json.Float (Trace.now ()))
           :: ("level", Json.String (level_to_string lvl))
           :: (identity
              @ ("msg", Json.String text)
                :: fields)))
    in
    with_lock (fun () -> emit_locked line)
  end

let debug ?fields text = msg Debug ?fields text

let info ?fields text = msg Info ?fields text

let warn ?fields text = msg Warn ?fields text

let error ?fields text = msg Error ?fields text
