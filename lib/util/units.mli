(** Byte-size and ratio formatting for experiment tables.

    Buffer sizes in the paper are quoted in binary units (512 KB = 2^19
    bytes: the worked BERT example only matches with KB = 1024 B). *)

val kib : int -> int
(** [kib n] is [n * 1024] bytes. *)

val mib : int -> int
(** [mib n] is [n * 1024 * 1024] bytes. *)

val pp_bytes : int -> string
(** Render a byte count with a binary-unit suffix, e.g. ["512KB"],
    ["2MB"], ["768B"]. Exact multiples print without decimals; negative
    counts scale by magnitude and keep their sign (["-1.50KB"]). *)

val parse_bytes : string -> (int, string) result
(** Parse strings like ["512KB"], ["32MB"], ["4096"], ["2GB"], ["1.5MB"]
    (case-insensitive, optional "B"/"iB" suffix) into a byte count.

    {b Every suffix is binary}: [KB], [K] and [KiB] all mean 1024 bytes
    (likewise [MB]/[M]/[MiB] = 2{^20}, [GB]/[G]/[GiB] = 2{^30},
    [TB]/[T]/[TiB] = 2{^40}) — the
    paper quotes buffer sizes this way (512 KB = 2{^19} B in the worked
    BERT example), so the CLI follows suit rather than splitting
    decimal KB from binary KiB. Fractional magnitudes are accepted and
    rounded to the nearest byte (["1.5MB"] = 1572864 exactly; ["0.3KB"]
    = 307); a fractional bare byte count (["1.5"], ["1.5B"]) is
    rejected. Inverse of {!pp_bytes} on every exactly-rendered value,
    and within 0.5% on two-decimal renderings. *)

val pp_count : int -> string
(** Render a large count with engineering suffixes, e.g. ["1.53M"],
    ["4.2G"], for memory-access and MAC counts. *)

val pp_pct : float -> string
(** Render a fraction as a percentage, e.g. [pp_pct 0.636 = "63.6%"]. *)

val pp_ratio : float -> string
(** Render a speedup-style ratio, e.g. [pp_ratio 1.33 = "1.33x"]. *)
