(** In-process structured tracing: request-scoped trace IDs and nested
    spans collected into a bounded ring buffer, exportable as Chrome
    trace-event JSON ([chrome://tracing] / Perfetto).

    Tracing is {e opt-in and invisible to program output}: when
    collection is off (the default) {!with_span} runs its body directly
    — one atomic load of overhead — and nothing is ever written to
    stdout, so instrumented code paths (the DSE engine, the planning
    service) keep their byte-deterministic responses whether or not a
    profile is being recorded (DESIGN.md §6b).

    Spans are recorded at completion into a fixed-capacity ring (oldest
    events are overwritten; {!dropped} counts the overwritten ones) plus
    per-category duration accumulators that are {e not} subject to ring
    eviction, so {!summary} stays exact over arbitrarily long runs. All
    recording is mutex-serialized, so spans closed concurrently on
    several pool domains cannot tear the buffer.

    The timebase is a pluggable clock returning seconds ({!set_clock}).
    The default is [Unix.gettimeofday]; benchmarks install a monotonic
    clock, and tests install a synthetic counter to get deterministic
    golden output. *)

type event = {
  name : string;
  cat : string;  (** category, e.g. ["enumerate"], ["evaluate"], ["merge"] *)
  ts_us : float;  (** span start, microseconds on the collector clock *)
  dur_us : float;  (** span duration in microseconds, [>= 0] *)
  tid : int;  (** domain id of the recording domain *)
  depth : int;  (** nesting depth within this domain, outermost = 1 *)
  args : (string * Json.t) list;
}

(** {1 Collection control} *)

val start : ?capacity:int -> unit -> unit
(** Enable collection into a fresh ring of [capacity] events (default
    65536, clamped to [>= 1]). Resets previously collected events,
    category totals and the drop count. *)

val stop : unit -> unit
(** Disable collection. Already-recorded events remain readable. *)

val is_enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events and category totals (collection state is
    unchanged). *)

val set_clock : (unit -> float) -> unit
(** Replace the collector clock (seconds since an arbitrary epoch). The
    default is wall clock; install a monotonic source when available, or
    a synthetic counter in tests. The clock may be called concurrently
    from several domains and must be safe to do so. *)

val now : unit -> float
(** Read the collector clock (works even when collection is off — also
    the shared timestamp source for {!Log}). *)

(** {1 Spans} *)

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat ~args name f] runs [f ()] and, when collection is
    enabled, records a completed span around it ([cat] defaults to
    ["span"]). The span is recorded even when [f] raises. Spans nest:
    each domain tracks its own depth, so concurrent domains do not see
    each other's nesting. *)

val new_trace_id : unit -> int
(** Fresh process-unique id ([>= 1]) for tagging a request or batch so
    its spans can be correlated across stages. *)

(** {1 Reading} *)

val events : unit -> event list
(** Snapshot of the ring in recording order (oldest first). *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since {!start}/{!clear}. *)

type cat_summary = { cat : string; total_s : float; count : int }

val summary : unit -> cat_summary list
(** Total recorded span time and span count per category, sorted by
    category name. Exact regardless of ring capacity. *)

(** {1 Export} *)

val to_chrome_json : ?pid:int -> ?process_name:string -> unit -> Json.t
(** The collected events as a Chrome trace-event JSON object
    ([{"traceEvents": [...]}], phase ["X"] complete events, timestamps
    in microseconds), loadable in [chrome://tracing] and Perfetto.
    [pid] defaults to the fixed lane 1 (single-process profiles keep
    their golden shape); pass the real process id — and a [process_name]
    lane title, emitted as a [process_name] metadata event — when the
    file will be merged with other processes' traces
    ({!merge_chrome}). *)

val export : ?pid:int -> ?process_name:string -> string -> unit
(** Write {!to_chrome_json} to a file. *)

val merge_chrome : Json.t list -> (Json.t, string) result
(** Merge parsed Chrome trace objects (one per process of a routed
    fleet) into a single timeline: lane-title metadata events first,
    then all complete events interleaved by start timestamp (stable, so
    equal timestamps keep per-file recording order). Every process
    records on the same wall clock, so no timestamp fixup is applied.
    [Error] when an input lacks a [traceEvents] array. *)
