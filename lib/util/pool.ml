(* Work-stealing-free chunk pool: one mutable "current job" guarded by a
   mutex; workers pull chunk indices from it until exhausted. A
   generation counter tells sleeping workers that a new job arrived.
   Only one parallel region runs at a time ([submit] mutex); a region
   submitted while another is active — including a nested region from
   inside a chunk body — runs inline on the caller instead. *)

type job = {
  body : int -> unit;  (* chunk index; must not raise *)
  label : string;  (* span name when tracing *)
  nchunks : int;
  submitted_at : float;  (* clock at submission, for queue-wait stats *)
  mutable next : int;  (* next chunk to hand out *)
  mutable unfinished : int;  (* chunks not yet completed *)
}

(* Per-worker accounting, owned by worker [i] (the submitting caller is
   worker 0) and only written with [t.mutex] held. *)
type worker_cell = {
  mutable chunks : int;
  mutable run_s : float;
  mutable wait_s : float;
}

type worker_stat = { worker : int; chunks : int; run_s : float; wait_s : float }

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* new job or shutdown *)
  work_done : Condition.t;  (* current job fully completed *)
  submit : Mutex.t;  (* serializes parallel regions *)
  cells : worker_cell array;
  mutable jobs : int;  (* parallel regions run on the pool *)
  mutable generation : int;
  mutable job : job option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let make_handle n =
  { size = n;
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    submit = Mutex.create ();
    cells = Array.init n (fun _ -> { chunks = 0; run_s = 0.; wait_s = 0. });
    jobs = 0;
    generation = 0;
    job = None;
    stop = false;
    domains = [] }

let sequential = make_handle 1

(* Run chunks of [job] until none are left, as worker [w]. Called and
   returns with [t.mutex] held. The first chunk a worker pulls charges
   the gap since submission to queue wait; chunk bodies are timed (and
   traced when collection is on) outside the lock. *)
let run_chunks t ~w job =
  let cell = t.cells.(w) in
  let first = ref true in
  while job.next < job.nchunks do
    let i = job.next in
    job.next <- i + 1;
    Mutex.unlock t.mutex;
    let t0 = Trace.now () in
    if !first then begin
      first := false;
      cell.wait_s <- cell.wait_s +. Float.max 0. (t0 -. job.submitted_at)
    end;
    if Trace.is_enabled () then
      Trace.with_span ~cat:"pool"
        ~args:[ ("chunk", Json.Int i); ("worker", Json.Int w) ]
        job.label
        (fun () -> job.body i)
    else job.body i;
    let dt = Float.max 0. (Trace.now () -. t0) in
    Mutex.lock t.mutex;
    cell.chunks <- cell.chunks + 1;
    cell.run_s <- cell.run_s +. dt;
    job.unfinished <- job.unfinished - 1;
    if job.unfinished = 0 then Condition.broadcast t.work_done
  done

let worker t ~w () =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  while not t.stop do
    if t.generation = !seen then Condition.wait t.work_ready t.mutex
    else begin
      seen := t.generation;
      match t.job with Some job -> run_chunks t ~w job | None -> ()
    end
  done;
  Mutex.unlock t.mutex

let shutdown t =
  if t != sequential then begin
    Mutex.lock t.mutex;
    if t.stop then Mutex.unlock t.mutex
    else begin
      t.stop <- true;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.domains;
      t.domains <- []
    end
  end

let create n =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t = make_handle n in
  if n > 1 then
    t.domains <- List.init (n - 1) (fun i -> Domain.spawn (worker t ~w:(i + 1)));
  (* Stray pools (e.g. a test that failed before its own shutdown) must
     not keep the process alive on worker domains blocked in wait. *)
  at_exit (fun () -> shutdown t);
  t

let default_size () =
  let fallback () = max 1 (min 64 (Domain.recommended_domain_count ())) in
  match Sys.getenv_opt "FUSECU_DOMAINS" with
  | None -> fallback ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n 64
    | _ -> fallback ())

let global = ref None

let global_lock = Mutex.create ()

let get_global () =
  Mutex.lock global_lock;
  let t =
    match !global with
    | Some t -> t
    | None ->
      let t = create (default_size ()) in
      global := Some t;
      t
  in
  Mutex.unlock global_lock;
  t

let set_global_size n =
  if n < 1 then invalid_arg "Pool.set_global_size: size must be >= 1";
  Mutex.lock global_lock;
  let old = !global in
  global := Some (create n);
  Mutex.unlock global_lock;
  Option.iter shutdown old

(* Run [body 0 .. body (nchunks-1)] on the pool, caller participating.
   Caller must hold [t.submit]. *)
let run_job t ~label ~nchunks ~body =
  let job =
    { body;
      label;
      nchunks;
      submitted_at = Trace.now ();
      next = 0;
      unfinished = nchunks }
  in
  Mutex.lock t.mutex;
  t.jobs <- t.jobs + 1;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  run_chunks t ~w:0 job;
  while job.unfinished > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.job <- None;
  Mutex.unlock t.mutex

(* The inline fallback still counts as work done by worker 0, so pool
   stats cover sequential pools and nested regions too. *)
let run_inline t ~label f =
  let t0 = Trace.now () in
  let fin () =
    let dt = Float.max 0. (Trace.now () -. t0) in
    Mutex.lock t.mutex;
    t.jobs <- t.jobs + 1;
    t.cells.(0).chunks <- t.cells.(0).chunks + 1;
    t.cells.(0).run_s <- t.cells.(0).run_s +. dt;
    Mutex.unlock t.mutex
  in
  Fun.protect ~finally:fin (fun () ->
      if Trace.is_enabled () then
        Trace.with_span ~cat:"pool"
          ~args:[ ("chunk", Json.Int 0); ("worker", Json.Int 0) ]
          label f
      else f ())

let parallel_fold ?pool ?(label = "parallel") ?chunks ~lo ~hi ~fold ~merge init
    =
  if hi <= lo then init
  else begin
    let t = match pool with Some p -> p | None -> get_global () in
    let n = hi - lo in
    let nchunks =
      match chunks with
      | Some c -> max 1 (min c n)
      | None -> max 1 (min (4 * t.size) n)
    in
    if t.size <= 1 || nchunks <= 1 || not (Mutex.try_lock t.submit) then
      (* size-1 pool, degenerate range, or a region already active on
         this pool (nested/concurrent use): run inline. *)
      merge init (run_inline t ~label (fun () -> fold lo hi))
    else begin
      let results = Array.make nchunks None in
      let failed = Array.make nchunks None in
      let body i =
        let clo = lo + (i * n / nchunks) and chi = lo + ((i + 1) * n / nchunks) in
        match fold clo chi with
        | v -> results.(i) <- Some v
        | exception e -> failed.(i) <- Some e
      in
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.submit)
        (fun () -> run_job t ~label ~nchunks ~body);
      Array.iter (function Some e -> raise e | None -> ()) failed;
      Array.fold_left
        (fun acc r -> match r with Some v -> merge acc v | None -> acc)
        init results
    end
  end

let parallel_map ?pool ?label ?chunks f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    (* Chunks write disjoint index ranges of [out]; no synchronization
       needed beyond job completion. *)
    parallel_fold ?pool ?label ?chunks ~lo:0 ~hi:n
      ~fold:(fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done)
      ~merge:(fun () () -> ())
      ();
    Array.map (function Some v -> v | None -> assert false) out
  end

let stats t =
  Mutex.lock t.mutex;
  let s =
    Array.to_list
      (Array.mapi
         (fun i (c : worker_cell) ->
           { worker = i; chunks = c.chunks; run_s = c.run_s; wait_s = c.wait_s })
         t.cells)
  in
  let jobs = t.jobs in
  Mutex.unlock t.mutex;
  (jobs, s)

let reset_stats t =
  Mutex.lock t.mutex;
  t.jobs <- 0;
  Array.iter
    (fun (c : worker_cell) ->
      c.chunks <- 0;
      c.run_s <- 0.;
      c.wait_s <- 0.)
    t.cells;
  Mutex.unlock t.mutex

let stats_json t =
  let jobs, workers = stats t in
  Json.Obj
    [ ("size", Json.Int t.size);
      ("jobs", Json.Int jobs);
      ( "workers",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [ ("worker", Json.Int w.worker);
                   ("chunks", Json.Int w.chunks);
                   ("run_s", Json.Float w.run_s);
                   ("wait_s", Json.Float w.wait_s) ])
             workers) ) ]
