let kib n = n * 1024
let mib n = n * 1024 * 1024

let pp_scaled ~unit_names ~base n =
  (* Scale by magnitude and re-attach the sign at the end: feeding a
     negative value through the picker would never scale (any negative
     is < base) and could print "-0.00KB"-style output after division. *)
  let sign = if n < 0 then "-" else "" in
  let magnitude = abs n in
  let rec pick value names =
    match names with
    | [] -> assert false
    | [ last ] -> (value, last)
    | name :: rest ->
      if value < float_of_int base then (value, name)
      else pick (value /. float_of_int base) rest
  in
  let value, name = pick (float_of_int magnitude) unit_names in
  if Float.is_integer value && value < 10000. then
    Printf.sprintf "%s%d%s" sign (int_of_float value) name
  else Printf.sprintf "%s%.2f%s" sign value name

let pp_bytes n = pp_scaled ~unit_names:[ "B"; "KB"; "MB"; "GB"; "TB" ] ~base:1024 n

let pp_count n = pp_scaled ~unit_names:[ ""; "K"; "M"; "G"; "T" ] ~base:1000 n

let parse_bytes s =
  let s = String.trim (String.lowercase_ascii s) in
  let invalid () = Error (Printf.sprintf "invalid byte count: %S" s) in
  let strip_suffix suffix str =
    let ls = String.length suffix and l = String.length str in
    if l >= ls && String.sub str (l - ls) ls = suffix then
      Some (String.sub str 0 (l - ls))
    else None
  in
  (* Every suffix is binary: KB = KiB = K = 1024 B (the paper quotes
     buffer sizes in binary units; see the .mli). The numeric part may
     be fractional — "1.5MB" is 1572864 bytes — rounded to the nearest
     byte when the product is not whole; a bare fractional byte count
     ("1.5", "1.5B") is rejected. *)
  let try_unit (suffix, mult) =
    match strip_suffix suffix s with
    | Some digits when digits <> "" -> (
      let digits = String.trim digits in
      match int_of_string_opt digits with
      | Some n when n >= 0 ->
        (* The float path below already rejects products past [max_int];
           the integer path must too — [n * mult] silently wraps (e.g.
           "8388609TB"), and a negative byte count would sail through
           every downstream [>= 0] check as a giant allocation. *)
        if mult > 0 && n > max_int / mult then Some (invalid ())
        else Some (Ok (n * mult))
      | Some _ -> Some (invalid ())
      | None -> (
        match float_of_string_opt digits with
        | Some f when Float.is_finite f && f >= 0. ->
          if mult = 1 && not (Float.is_integer f) then Some (invalid ())
          else
            let rounded = Float.round (f *. float_of_int mult) in
            if rounded > float_of_int max_int then Some (invalid ())
            else Some (Ok (int_of_float rounded))
        | _ -> Some (invalid ())))
    | _ -> None
  in
  let units =
    [ ("tib", 1 lsl 40); ("tb", 1 lsl 40); ("t", 1 lsl 40);
      ("gib", 1 lsl 30); ("gb", 1 lsl 30); ("g", 1 lsl 30);
      ("mib", 1 lsl 20); ("mb", 1 lsl 20); ("m", 1 lsl 20);
      ("kib", 1 lsl 10); ("kb", 1 lsl 10); ("k", 1 lsl 10);
      ("b", 1); ("", 1) ]
  in
  let rec first = function
    | [] -> invalid ()
    | u :: rest -> ( match try_unit u with Some r -> r | None -> first rest)
  in
  first units

let pp_pct f = Printf.sprintf "%.1f%%" (100. *. f)

let pp_ratio f = Printf.sprintf "%.2fx" f
