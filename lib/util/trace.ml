type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  depth : int;
  args : (string * Json.t) list;
}

type cat_summary = { cat : string; total_s : float; count : int }

type cat_total = { mutable total_us : float; mutable n : int }

(* The ring plus the eviction-proof per-category accumulators. [head]
   is the next write slot; once [filled = capacity] the ring wraps and
   [dropped] counts the overwritten events. *)
type state = {
  mutable ring : event array;
  mutable capacity : int;
  mutable head : int;
  mutable filled : int;
  mutable dropped : int;
  totals : (string, cat_total) Hashtbl.t;
}

let default_capacity = 65536

let dummy =
  { name = ""; cat = ""; ts_us = 0.; dur_us = 0.; tid = 0; depth = 0; args = [] }

let state =
  { ring = [||];
    capacity = 0;
    head = 0;
    filled = 0;
    dropped = 0;
    totals = Hashtbl.create 8 }

let mutex = Mutex.create ()

let enabled = Atomic.make false

(* Benign-race ref: only ever replaced before collection starts (tests,
   bench setup); readers always see a valid closure. *)
let clock = ref Unix.gettimeofday

let set_clock f = clock := f

let now () = !clock ()

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let clear_locked () =
  state.head <- 0;
  state.filled <- 0;
  state.dropped <- 0;
  Array.fill state.ring 0 (Array.length state.ring) dummy;
  Hashtbl.reset state.totals

let clear () = with_lock clear_locked

let start ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  with_lock (fun () ->
      state.ring <- Array.make capacity dummy;
      state.capacity <- capacity;
      clear_locked ());
  Atomic.set enabled true

let stop () = Atomic.set enabled false

let is_enabled () = Atomic.get enabled

let record ev =
  with_lock (fun () ->
      if state.capacity > 0 then begin
        state.ring.(state.head) <- ev;
        state.head <- (state.head + 1) mod state.capacity;
        if state.filled < state.capacity then state.filled <- state.filled + 1
        else state.dropped <- state.dropped + 1
      end;
      match Hashtbl.find_opt state.totals ev.cat with
      | Some t ->
        t.total_us <- t.total_us +. ev.dur_us;
        t.n <- t.n + 1
      | None ->
        Hashtbl.replace state.totals ev.cat { total_us = ev.dur_us; n = 1 })

(* Per-domain nesting depth; each domain only touches its own cell. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let with_span ?(cat = "span") ?(args = []) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    incr depth;
    let d = !depth in
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now () in
        decr depth;
        record
          { name;
            cat;
            ts_us = t0 *. 1e6;
            dur_us = Float.max 0. ((t1 -. t0) *. 1e6);
            tid = (Domain.self () :> int);
            depth = d;
            args })
      f
  end

let trace_ids = Atomic.make 0

let new_trace_id () = Atomic.fetch_and_add trace_ids 1 + 1

let events () =
  with_lock (fun () ->
      List.init state.filled (fun i ->
          let oldest = (state.head - state.filled + state.capacity * 2) mod (max 1 state.capacity) in
          state.ring.((oldest + i) mod state.capacity)))

let dropped () = with_lock (fun () -> state.dropped)

let summary () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun cat t acc ->
          { cat; total_s = t.total_us /. 1e6; count = t.n } :: acc)
        state.totals [])
  |> List.sort (fun a b -> String.compare a.cat b.cat)

let event_json ~pid ev =
  Json.Obj
    [ ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ("ph", Json.String "X");
      ("ts", Json.Float ev.ts_us);
      ("dur", Json.Float ev.dur_us);
      ("pid", Json.Int pid);
      ("tid", Json.Int ev.tid);
      ("args", Json.Obj (("depth", Json.Int ev.depth) :: ev.args)) ]

(* Chrome groups events into process lanes by [pid] and titles the lane
   from a [process_name] metadata event. Exports default to the fixed
   pid 1 (single-process profiles, stable goldens); multi-process
   exports (the routed fleet) pass the real pid and a lane name so
   [merge_chrome] produces distinct, labelled lanes. *)
let process_name_event ~pid name =
  Json.Obj
    [ ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]) ]

let to_chrome_json ?(pid = 1) ?process_name () =
  let meta =
    match process_name with
    | None -> []
    | Some name -> [ process_name_event ~pid name ]
  in
  Json.Obj
    [ ("traceEvents",
       Json.List (meta @ List.map (event_json ~pid) (events ())));
      ("displayTimeUnit", Json.String "ms") ]

let export ?pid ?process_name path =
  let dump = Json.print (to_chrome_json ?pid ?process_name ()) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc dump;
      Out_channel.output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Cross-process merge                                                 *)

(* Merge several Chrome trace objects (one per process of a routed
   fleet) into a single timeline. Metadata events keep lane titles and
   sort first; complete events interleave by start timestamp — every
   process records on the same wall clock ([Unix.gettimeofday]), so
   cross-process ordering is meaningful without any offset fixup. The
   sort is stable: events with equal timestamps keep their per-file
   (recording) order. *)
let merge_chrome traces =
  let events_of t =
    match t with
    | Json.Obj _ -> (
      match Json.member "traceEvents" t with
      | Some (Json.List evs) -> Ok evs
      | Some _ -> Error "traceEvents is not an array"
      | None -> Error "missing traceEvents")
    | _ -> Error "trace is not a JSON object"
  in
  let rec collect acc i = function
    | [] -> Ok (List.concat (List.rev acc))
    | t :: rest -> (
      match events_of t with
      | Ok evs -> collect (evs :: acc) (i + 1) rest
      | Error e -> Error (Printf.sprintf "trace %d: %s" i e))
  in
  match collect [] 0 traces with
  | Error _ as e -> e
  | Ok all ->
    let key ev =
      match Json.member "ph" ev with
      | Some (Json.String "M") -> Float.neg_infinity
      | _ -> (
        match Json.member "ts" ev with
        | Some (Json.Float f) -> f
        | Some (Json.Int n) -> float_of_int n
        | _ -> Float.neg_infinity)
    in
    let sorted =
      List.stable_sort (fun a b -> Float.compare (key a) (key b)) all
    in
    Ok
      (Json.Obj
         [ ("traceEvents", Json.List sorted);
           ("displayTimeUnit", Json.String "ms") ])
