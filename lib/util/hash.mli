(** Stable string hashes for shard routing and on-disk framing.

    [Hashtbl.hash] is unsuitable for both jobs: its traversal is bounded
    (long canonical keys differing only in their tails collide, skewing
    shard occupancy) and its value is not a stable format commitment.
    These are: FNV-1a with the standard 64-bit offset/prime, and the
    zlib-compatible reflected CRC-32. Both hash every byte. *)

val fnv1a64 : string -> int
(** Full-string 64-bit FNV-1a (computed in OCaml's 63-bit [int]; the
    top bit of the 64-bit reference value is lost, which is fine for
    routing and fingerprinting as long as every consumer uses this same
    function). *)

val fnv1a64_positive : string -> int
(** [fnv1a64 s land max_int] — non-negative, for [mod]-style bucketing
    and consistent-hash rings. *)

val crc32 : ?init:int -> string -> int
(** IEEE CRC-32 of [s] in [\[0, 0xFFFFFFFF\]]; [init] chains a previous
    CRC across fragments ([crc32 ~init:(crc32 a) b = crc32 (a ^ b)]). *)
