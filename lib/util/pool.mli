(** A fixed-size pool of OCaml 5 domains for data-parallel folds over
    integer index ranges.

    The pool exists so that the DSE hot paths (schedule-space search,
    buffer sweeps, workload evaluation) can split their iteration space
    into chunks and evaluate the chunks on several cores, while keeping
    results {e bit-identical} to the sequential path: per-chunk partial
    results are combined with a caller-supplied [merge] in ascending
    chunk order, so a deterministic [merge] yields a deterministic total
    regardless of which domain ran which chunk, or in which order the
    chunks finished.

    Built on [Domain], [Mutex] and [Condition] from the standard library
    only — no external dependencies. Worker domains are spawned once at
    pool creation and reused across parallel regions; a pool of size 1
    spawns nothing and runs every region inline. Nested or concurrent
    regions on the same pool degrade gracefully to inline sequential
    execution instead of deadlocking. *)

type t

val create : int -> t
(** [create n] spawns [n - 1] worker domains ([n >= 1]; the submitting
    caller acts as the [n]-th worker). The pool is registered with
    [at_exit] so stray pools do not prevent program termination;
    {!shutdown} is idempotent. Raises [Invalid_argument] when [n < 1]. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    used afterwards. *)

val size : t -> int
(** Number of workers, including the submitting caller. *)

val sequential : t
(** A pool of size 1: every region runs inline on the caller, nothing is
    ever spawned. Useful as an explicit [?pool] argument to force the
    sequential path (baselines, determinism tests). *)

val default_size : unit -> int
(** Pool size used for the implicit global pool: the [FUSECU_DOMAINS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()], clamped to [\[1, 64\]]. *)

val get_global : unit -> t
(** The lazily-created process-wide pool (size {!default_size}); used by
    every parallel entry point when no explicit [?pool] is given. *)

val set_global_size : int -> unit
(** Replace the global pool with one of the given size (shutting the old
    one down). Intended for benchmarks and tests that compare domain
    counts at runtime. *)

val parallel_fold :
  ?pool:t ->
  ?label:string ->
  ?chunks:int ->
  lo:int ->
  hi:int ->
  fold:(int -> int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [parallel_fold ?pool ?label ?chunks ~lo ~hi ~fold ~merge init]
    splits the half-open range [\[lo, hi)] into [chunks] contiguous
    sub-ranges (default [4 x size], for load balancing), evaluates
    [fold sub_lo sub_hi] for each — possibly on different domains — and
    combines the partial results left to right:
    [merge (... (merge init p0) ...) p_last].

    [label] (default ["parallel"]) names the per-chunk {!Trace} spans
    (category ["pool"]) recorded while trace collection is enabled; it
    has no effect on results.

    Determinism contract: if [merge] is associative with [init] as a
    left identity, the result is independent of the chunk count and of
    the pool, so the parallel result equals the sequential
    [merge init (fold lo hi)].

    An exception raised by [fold] is re-raised in the caller (the one
    from the lowest-numbered chunk, if several chunks fail) after all
    chunks have settled. Returns [init] when [hi <= lo]. *)

val parallel_map :
  ?pool:t -> ?label:string -> ?chunks:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f arr] is [Array.map f arr] with the elements
    evaluated in parallel chunks; ordering of the result is preserved.
    Same exception behaviour (and [label] meaning) as {!parallel_fold}. *)

(** {1 Observability}

    Lightweight per-worker accounting, always on (a clock read and two
    float adds per chunk): worker 0 is the submitting caller, workers
    [1 .. size-1] are the spawned domains. [wait_s] accumulates, for
    each region, the delay between job submission and the worker's
    first chunk start (queue wait); [run_s] is time spent inside chunk
    bodies. Inline fallback regions (sequential pools, nested regions)
    are charged to worker 0. None of this affects scheduling or
    results. *)

type worker_stat = { worker : int; chunks : int; run_s : float; wait_s : float }

val stats : t -> int * worker_stat list
(** [(jobs, per-worker)] since creation or the last {!reset_stats};
    [jobs] counts parallel regions (inline fallbacks included). *)

val reset_stats : t -> unit

val stats_json : t -> Json.t
(** [{"size", "jobs", "workers": [{"worker","chunks","run_s","wait_s"}]}]
    — embedded in bench reports. *)
