(* FNV-1a and CRC-32, written out longhand so the service tier has
   stable, full-string hashes with no dependency on the compiler's
   polymorphic hash (whose bounded traversal ignores the tails of long
   keys and changes across OCaml releases — unacceptable for on-disk
   formats and shard routing). *)

(* The 64-bit FNV offset basis truncated to OCaml's 63-bit [int]
   (0xcbf29ce484222325 land max_int); multiplication already wraps mod
   2^63, so this is a 63-bit FNV-1a variant — stable as long as every
   consumer uses this one function (see the .mli). *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let fnv1a64 s =
  let h = ref fnv_offset in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h

let fnv1a64_positive s = fnv1a64 s land max_int

(* Standard reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the
   same function `zlib` computes: little-endian bit order, initial and
   final XOR of all-ones. Table-driven, one entry per byte value. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) s =
  let table = Lazy.force crc_table in
  let c = ref (init lxor 0xFFFFFFFF) in
  for i = 0 to String.length s - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
