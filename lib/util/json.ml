type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that reparses to the same float ("%.15g" is
   enough for most values, "%.17g" always is), forced to contain a '.'
   or exponent so the reader classifies it as Float, not Int. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.print: NaN and infinities are not representable";
  let s =
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec print_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print_buf buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        print_buf buf v)
      kvs;
    Buffer.add_char buf '}'

let print v =
  let buf = Buffer.create 256 in
  print_buf buf v;
  Buffer.contents buf

let print_hum v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> print_buf buf v
    | List [] -> Buffer.add_string buf "[]"
    | List vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) v)
        vs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %S)" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> pos := !pos + 4; c
    | None -> fail (Printf.sprintf "invalid \\u escape %S" h)
  in
  (* Encode a Unicode scalar value as UTF-8; \u escapes outside the BMP
     arrive as surrogate pairs, which the string reader combines. *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> advance (); Buffer.add_char buf '"'
         | '\\' -> advance (); Buffer.add_char buf '\\'
         | '/' -> advance (); Buffer.add_char buf '/'
         | 'n' -> advance (); Buffer.add_char buf '\n'
         | 'r' -> advance (); Buffer.add_char buf '\r'
         | 't' -> advance (); Buffer.add_char buf '\t'
         | 'b' -> advance (); Buffer.add_char buf '\b'
         | 'f' -> advance (); Buffer.add_char buf '\012'
         | 'u' ->
           advance ();
           let c = parse_hex4 () in
           (* Surrogates are only meaningful as a \uD800-DBFF/\uDC00-DFFF
              pair; a lone half is not a Unicode scalar value, and
              [add_utf8] would emit ill-formed UTF-8 that strict
              consumers reject. Fail instead of passing it through. *)
           let c =
             if c >= 0xD800 && c <= 0xDBFF then begin
               if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = parse_hex4 () in
                 if lo >= 0xDC00 && lo <= 0xDFFF then
                   0x10000 + ((c - 0xD800) lsl 10) + (lo - 0xDC00)
                 else
                   fail
                     (Printf.sprintf
                        "invalid \\u escape: high surrogate %04X followed by \
                         %04X, not a low surrogate" c lo)
               end
               else
                 fail
                   (Printf.sprintf
                      "invalid \\u escape: unpaired high surrogate %04X" c)
             end
             else if c >= 0xDC00 && c <= 0xDFFF then
               fail
                 (Printf.sprintf
                    "invalid \\u escape: unpaired low surrogate %04X" c)
             else c
           in
           add_utf8 buf c
         | c -> fail (Printf.sprintf "invalid escape \\%c" c));
        loop ()
      | c when Char.code c < 0x20 -> fail "unescaped control character in string"
      | c -> advance (); Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_digit c = c >= '0' && c <= '9' in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while (match peek () with Some c when is_digit c -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    let is_float = ref false in
    (match peek () with
    | Some '.' ->
      is_float := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    (* Overflowing literals ("1e999", 400-digit integers) widen to
       infinity, which [print] cannot represent — accepting them would
       break the parse/print round-trip, so they are malformed input. *)
    let finite_float () =
      match float_of_string_opt text with
      | Some f when Float.is_finite f -> Float f
      | Some _ -> fail (Printf.sprintf "number %S overflows" text)
      | None -> fail (Printf.sprintf "invalid number %S" text)
    in
    if !is_float then finite_float ()
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (* magnitude beyond the 63-bit int range: widen *)
        finite_float ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' in array"
        in
        elems []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int n -> Ok n
  | v -> Error (Printf.sprintf "expected an integer, found %s" (type_name v))

let to_float = function
  | Float f -> Ok f
  | Int n -> Ok (float_of_int n)
  | v -> Error (Printf.sprintf "expected a number, found %s" (type_name v))

let to_string_v = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected a string, found %s" (type_name v))

let to_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected a bool, found %s" (type_name v))

let to_list = function
  | List vs -> Ok vs
  | v -> Error (Printf.sprintf "expected an array, found %s" (type_name v))
