open Fusecu_tensor

type t = { outer : Dim.t; mid : Dim.t; inner : Dim.t }

let make ~outer ~mid ~inner =
  if Dim.equal outer mid || Dim.equal mid inner || Dim.equal outer inner then
    invalid_arg "Order.make: dimensions must be distinct";
  { outer; mid; inner }

let all =
  let open Dim in
  [ { outer = M; mid = K; inner = L };
    { outer = M; mid = L; inner = K };
    { outer = K; mid = M; inner = L };
    { outer = K; mid = L; inner = M };
    { outer = L; mid = M; inner = K };
    { outer = L; mid = K; inner = M } ]

let position t d =
  if Dim.equal d t.outer then 1
  else if Dim.equal d t.mid then 2
  else 3

let dims t = [ t.outer; t.mid; t.inner ]

let stationary_for operand =
  let free = Operand.free_dim operand in
  List.filter (fun t -> Dim.equal t.inner free) all

let transpose_ml t =
  let swap = function Dim.M -> Dim.L | Dim.L -> Dim.M | Dim.K -> Dim.K in
  { outer = swap t.outer; mid = swap t.mid; inner = swap t.inner }

let equal a b =
  Dim.equal a.outer b.outer && Dim.equal a.mid b.mid && Dim.equal a.inner b.inner

let to_string t =
  Printf.sprintf "%s>%s>%s" (Dim.to_string t.outer) (Dim.to_string t.mid)
    (Dim.to_string t.inner)

let pp fmt t = Format.pp_print_string fmt (to_string t)
