open Fusecu_tensor

type t = { tiling : Tiling.t; order : Order.t }

let make tiling order = { tiling; order }

let footprint t = Tiling.footprint t.tiling

let fits t buf = Tiling.fits t.tiling buf

let trips op t d = Tiling.trips op t.tiling d

let total_tile_iterations op t =
  trips op t Dim.M * trips op t Dim.K * trips op t Dim.L

let transpose_ml op t =
  { tiling = Tiling.transpose_ml op t.tiling; order = Order.transpose_ml t.order }

let equal a b = Tiling.equal a.tiling b.tiling && Order.equal a.order b.order

let pp fmt t = Format.fprintf fmt "%a %a" Order.pp t.order Tiling.pp t.tiling

let to_string t = Format.asprintf "%a" pp t
