(** A schedule is a complete memory-level dataflow for one operator:
    tiling plus loop order. The cost model ({!Cost}) assigns each
    schedule an exact memory-access count. *)

open Fusecu_tensor

type t = { tiling : Tiling.t; order : Order.t }

val make : Tiling.t -> Order.t -> t

val footprint : t -> int
(** Buffer elements occupied by one tile of each operand. *)

val fits : t -> Buffer.t -> bool

val trips : Matmul.t -> t -> Dim.t -> int
(** Tile-loop trip count along a dimension. *)

val total_tile_iterations : Matmul.t -> t -> int
(** Product of the three trip counts: how many tile computations the
    schedule performs. *)

val transpose_ml : Matmul.t -> t -> t
(** Map a schedule across the [Matmul.transpose] symmetry: swap the
    [M]/[L] tile sizes and the [M]/[L] loop levels. The [Matmul.t]
    argument is the transposed operator the result belongs to. Memory
    behaviour is invariant: [Cost.eval op s =
    Cost.eval (Matmul.transpose op) (transpose_ml (Matmul.transpose op) s)]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
