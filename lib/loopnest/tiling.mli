(** A tiling assigns each loop dimension of a matmul a tile size: the
    extent of that dimension held in the buffer at once (Fig. 2(a) of the
    paper).

    Tile sizes are normalized against the operator at construction: a
    requested tile larger than the dimension is clamped to the dimension,
    so an "untiled" dimension is exactly one whose tile equals its
    size. *)

open Fusecu_tensor

type t = private { m : int; k : int; l : int }

val make : Matmul.t -> m:int -> k:int -> l:int -> t
(** Clamps each size into [\[1, dim\]]. Raises [Invalid_argument] when a
    size is [< 1]. *)

val full : Matmul.t -> t
(** The tiling that holds every tensor entirely (all dims untiled). *)

val unit : t
(** The 1x1x1 tiling — the smallest footprint possible. *)

val get : t -> Dim.t -> int

val with_dim : Matmul.t -> t -> Dim.t -> int -> t
(** Functional update of one dimension's tile size (re-normalized). *)

val footprint : t -> int
(** Buffer elements needed to hold one tile of each operand:
    [Tm*Tk + Tk*Tl + Tm*Tl] — Eq. 2 of the paper. *)

val operand_tile : t -> Operand.t -> int
(** Elements of one tile of an operand. *)

val fits : t -> Buffer.t -> bool
(** Whether the footprint fits the buffer capacity. *)

val untiled : Matmul.t -> t -> Dim.t -> bool
(** Whether the given dimension is untiled (tile size = dimension). *)

val trips : Matmul.t -> t -> Dim.t -> int
(** Iteration count of the tile loop over a dimension:
    [ceil (dim / tile)]. *)

val transpose_ml : Matmul.t -> t -> t
(** Swap the [M] and [L] tile sizes. The [Matmul.t] argument is the
    operator the {e result} belongs to (i.e. [Matmul.transpose] of the
    tiling's own operator); tiles are re-clamped against it. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
