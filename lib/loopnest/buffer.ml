type t = { bytes : int; elt_bytes : int }

let make ?(elt_bytes = 1) bytes =
  if bytes < 1 then invalid_arg "Buffer.make: bytes must be >= 1";
  if elt_bytes < 1 then invalid_arg "Buffer.make: elt_bytes must be >= 1";
  { bytes; elt_bytes }

let of_kib ?elt_bytes n = make ?elt_bytes (Fusecu_util.Units.kib n)

let of_mib ?elt_bytes n = make ?elt_bytes (Fusecu_util.Units.mib n)

let elements t = t.bytes / t.elt_bytes

let fits t footprint = footprint <= elements t

let pp fmt t =
  Format.fprintf fmt "%s (%d-byte elements)"
    (Fusecu_util.Units.pp_bytes t.bytes)
    t.elt_bytes
