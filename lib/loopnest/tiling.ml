open Fusecu_tensor

type t = { m : int; k : int; l : int }

let make (op : Matmul.t) ~m ~k ~l =
  if m < 1 || k < 1 || l < 1 then invalid_arg "Tiling.make: tile sizes must be >= 1";
  { m = min m op.m; k = min k op.k; l = min l op.l }

let full (op : Matmul.t) = { m = op.m; k = op.k; l = op.l }

let unit = { m = 1; k = 1; l = 1 }

let get t = function Dim.M -> t.m | Dim.K -> t.k | Dim.L -> t.l

let with_dim op t d size =
  match d with
  | Dim.M -> make op ~m:size ~k:t.k ~l:t.l
  | Dim.K -> make op ~m:t.m ~k:size ~l:t.l
  | Dim.L -> make op ~m:t.m ~k:t.k ~l:size

let footprint t = (t.m * t.k) + (t.k * t.l) + (t.m * t.l)

let operand_tile t op =
  let d1, d2 = Operand.dims op in
  get t d1 * get t d2

let fits t buf = footprint t <= Buffer.elements buf

let untiled op t d = get t d >= Matmul.dim op d

let trips op t d = Fusecu_util.Arith.ceil_div (Matmul.dim op d) (get t d)

let transpose_ml (op : Matmul.t) t = make op ~m:t.l ~k:t.k ~l:t.m

let equal a b = a.m = b.m && a.k = b.k && a.l = b.l

let pp fmt t = Format.fprintf fmt "T(m=%d,k=%d,l=%d)" t.m t.k t.l
