(** A loop order: the scheduling half of a dataflow (Fig. 2(b)).

    Orders are permutations of the three matmul dimensions, listed from
    the outermost to the innermost tile loop. The paper's notation
    ["1(K)"] (loop level 1 = innermost on K) corresponds to [inner = K]
    here. *)

open Fusecu_tensor

type t = private { outer : Dim.t; mid : Dim.t; inner : Dim.t }

val make : outer:Dim.t -> mid:Dim.t -> inner:Dim.t -> t
(** Raises [Invalid_argument] unless the three dims are distinct. *)

val all : t list
(** All six loop orders. *)

val position : t -> Dim.t -> int
(** 1 for the outermost loop, 3 for the innermost. *)

val dims : t -> Dim.t list
(** Outer-to-inner dimension list. *)

val stationary_for : Operand.t -> t list
(** The orders that keep the given operand stationary in the classic
    sense: its free dimension is the innermost loop. E.g.
    [stationary_for C] are the two output-stationary orders (inner =
    K). *)

val transpose_ml : t -> t
(** Swap the roles of [M] and [L] at every loop level — the loop-order
    half of the [Matmul.transpose] symmetry. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [M>L>K] outer-to-inner. *)

val to_string : t -> string
