(** The on-chip buffer between memory and the PE array.

    Capacity is stored in bytes; the cost model works in elements, so the
    element width (default 1 byte, int8, as in TPUv4i-class inference
    accelerators) converts between the two. With 1-byte elements the
    paper's worked example (512 KB buffer vs thresholds counted in
    elements) is reproduced exactly. *)

type t = private { bytes : int; elt_bytes : int }

val make : ?elt_bytes:int -> int -> t
(** [make bytes] builds a buffer. [bytes >= 1], [elt_bytes >= 1]. *)

val of_kib : ?elt_bytes:int -> int -> t
(** [of_kib n] is a buffer of [n] KiB. *)

val of_mib : ?elt_bytes:int -> int -> t

val elements : t -> int
(** Usable capacity in elements: [bytes / elt_bytes]. *)

val fits : t -> int -> bool
(** [fits t footprint]: whether a footprint (in elements) is within
    capacity. *)

val pp : Format.formatter -> t -> unit
