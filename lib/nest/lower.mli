(** Lowerings of the tensor operators into projective nests.

    The matmul lowering (axes [m;k;l], operands A(m,k), B(k,l),
    C(m,l)) is the bridge to the legacy stack: {!dim_axis} and
    {!schedule_of_mm} translate [Tiling]/[Order] schedules so the
    regression suite can lock cost equality bit-for-bit. *)

open Fusecu_tensor
open Fusecu_loopnest

val of_matmul : Matmul.t -> Nest.t

val dim_axis : Dim.t -> int
(** [M -> 0], [K -> 1], [L -> 2]. *)

val schedule_of_mm : Nest.t -> tiling:Tiling.t -> order:Order.t -> Nest.schedule
(** Translate a legacy matmul schedule onto [of_matmul]'s axes. *)

val of_chain : Chain.t -> Nest.t
(** Whole chain as one fused nest: axes [m; d0; ...; dn], weights
    external, every intermediate [C_i] ([i < last]) internal
    (Principle 4 — valid schedules keep them revisit-free). *)

val of_conv : Conv.t -> Nest.t
(** Direct (im2col-free) conv2d: axes [n; ko; oh; ow; c; r; s]; the
    input activation uses [Window] projections (halo overlap), so its
    traffic is not inflated the way the im2col lowering's is. The
    input tensor models the {e padded} activation. *)

val of_conv_im2col : Conv.t -> Nest.t
(** [of_matmul (Conv.to_matmul cv)] — the inflated baseline. *)

val batched_mm : ?name:string -> b:int -> m:int -> k:int -> l:int -> unit -> Nest.t
(** [C\[b,m,l\] = A\[b,m,k\] x B\[b,k,l\]]. *)

val grouped_mm :
  ?name:string -> groups:int -> heads:int -> m:int -> k:int -> l:int -> unit ->
  Nest.t
(** Grouped-query pattern: per-(group, head) [A] and [C], one shared
    [B] per group (free in the head axis). *)

val attention_pair :
  ?name:string -> ?dv:int -> seq_q:int -> seq_k:int -> d:int -> unit -> Nest.t
(** The score x value pair [S = Q.K^T; O = S.V] as one fused nest with
    the score matrix [S(m,n)] internal. [dv] defaults to [d]. *)
