(* Communication lower bounds for projective nests, HBL-style: the
   unbounded bound is the sum of the external tensor sizes (each
   element must cross the memory boundary at least once), which on the
   MM instance is exactly Core.Lower_bound.intra = Matmul.ideal_ma.

   [penalized] sharpens it for branch-and-bound pruning, generalizing
   Dse.Bnb's pairwise-exclusion argument (DESIGN.md section 4c, now
   section 11): two tensors T1, T2 with crossed tiled indices — f free
   in T1 but used (and tiled) in T2, g free in T2 but used (and tiled)
   in T1 — cannot both be revisit-free, because T1 needs pos(f) inner
   to pos(g) and T2 the opposite. The revisit-free tensors therefore
   form an independent set of the conflict graph, and every tensor
   outside it pays at least its cheapest single-loop revisit penalty.
   The adversary picks the max-weight independent set. On matmul the
   conflict graph is the clique over the operands freed by tiled
   dimensions, and the bound collapses to Bnb's "sum of penalties
   minus the most expensive one". *)

(* Minimum achievable one-sweep traffic of a tensor over the whole
   tiling lattice. Point dimensions partition exactly, so every sweep
   pays the full extent. Window dimensions pay the edge-clipped tile
   grid — for a skipping window (stride beyond the dilated kernel
   span) a coarse tiling touches fewer elements than the window span,
   so the tensor "size" is NOT a lower bound. The sweep closed form
   stride*nk*(eo-no) + dilation*no*(ek-nk) + no*nk is linear in each
   trip count separately, so its minimum over the trip rectangle sits
   at a corner, and both corner values (1 and the extent) are always
   achievable (tile = extent, tile = 1). *)
let min_access_sweep t = function
  | Nest.Point i -> t.Nest.extents.(i)
  | Nest.Window { outer; kernel; stride; dilation } ->
    let eo = t.Nest.extents.(outer) and ek = t.Nest.extents.(kernel) in
    let f no nk =
      (stride * nk * (eo - no)) + (dilation * no * (ek - nk)) + (no * nk)
    in
    min (min (f 1 1) (f 1 ek)) (min (f eo 1) (f eo ek))

let min_sweep t x =
  List.fold_left (fun acc a -> acc * min_access_sweep t a) 1 x.Nest.dims

let ideal t =
  List.fold_left (fun acc x -> acc + min_sweep t x) 0 (Nest.externals t)

(* [trips] holds per-axis lower bounds on the trip count (exact values
   make the bound exact at leaves). Admissible: every schedule whose
   actual trip counts dominate [trips] costs at least the result. *)
let penalized t ~trips =
  let n = Nest.rank t in
  let externals = Array.of_list (Nest.externals t) in
  let used = Array.map Nest.used_axes externals in
  let free x =
    let rec go i =
      if i >= n then []
      else if List.mem i used.(x) then go (i + 1)
      else i :: go (i + 1)
    in
    go 0
  in
  let hot i = trips.(i) > 1 in
  (* Tensors that certainly revisit-or-pay: some tiled free axis (the
     potential violator) and some tiled used axis (so a violator
     actually forces a refetch). *)
  let members =
    let keep = ref [] in
    Array.iteri
      (fun x _ ->
        if List.exists hot (free x) && List.exists hot used.(x) then
          keep := x :: !keep)
      externals;
    Array.of_list (List.rev !keep)
  in
  let m = Array.length members in
  if m = 0 then ideal t
  else begin
    (* Cheapest possible revisit if this tensor is not revisit-free:
       the violating loop may be any free axis that ends up tiled, so
       take the min over free axes of max(trips_lb, 2) - 1 sweeps, at
       one minimal sweep each (actual sweep traffic >= min_sweep). *)
    let pen =
      Array.map
        (fun x ->
          let cheapest =
            List.fold_left
              (fun acc f -> min acc (max trips.(f) 2))
              max_int (free x)
          in
          (cheapest - 1) * min_sweep t externals.(x))
        members
    in
    let conflict a b =
      let xa = members.(a) and xb = members.(b) in
      List.exists (fun f -> hot f && List.mem f used.(xb)) (free xa)
      && List.exists (fun g -> hot g && List.mem g used.(xa)) (free xb)
    in
    let edges = Array.make_matrix m m false in
    for a = 0 to m - 1 do
      for b = a + 1 to m - 1 do
        if conflict a b then begin
          edges.(a).(b) <- true;
          edges.(b).(a) <- true
        end
      done
    done;
    (* max-weight independent set, exact (m is tiny: # tensors) *)
    let best_saved = ref 0 in
    for mask = 0 to (1 lsl m) - 1 do
      let ok = ref true and w = ref 0 in
      for a = 0 to m - 1 do
        if !ok && mask land (1 lsl a) <> 0 then begin
          w := !w + pen.(a);
          for b = a + 1 to m - 1 do
            if mask land (1 lsl b) <> 0 && edges.(a).(b) then ok := false
          done
        end
      done;
      if !ok && !w > !best_saved then best_saved := !w
    done;
    let total_pen = Array.fold_left ( + ) 0 pen in
    ideal t + (total_pen - !best_saved)
  end
