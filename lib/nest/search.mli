(** Tiling lattice and exhaustive schedule search over a nest.

    Mirrors [Dse.Space]/[Dse.Exhaustive]: candidate tiles per axis
    from the chosen lattice, feasibility = tile footprint within the
    buffer capacity (in elements), enumeration with axis 0 slowest and
    the last axis fastest, and a first-seen
    (total, tiling index, order rank) minimum — so on the matmul
    instance the winner is the legacy exhaustive winner (same tiles,
    same cost) bit-for-bit. Per tiling, only permutations of the
    active (trips > 1) axes are enumerated; inactive axes sit
    innermost, which never changes any cost. *)

type lattice = All | Divisors | Pow2

val tile_candidates : lattice -> int -> int list

type space

val compile : ?lattice:lattice -> Nest.t -> capacity:int -> space
(** [lattice] defaults to [Divisors]; [capacity] is in elements. *)

val nest_of : space -> Nest.t

val capacity : space -> int

val candidates : space -> int -> int array
(** Increasing tile candidates for one axis. *)

val raw_tilings : space -> int

val tiling_index : space -> int array -> int
(** Raw index of a tiling from per-axis candidate indices (0 in an
    entry gives the subtree minimum for partial assignments). *)

val orders : space -> trips:int array -> int array list
(** Loop orders to evaluate for a tiling with the given trip counts,
    in rank order (memoized per active-axis set). *)

type result = {
  schedule : Nest.schedule;
  cost : Nest.cost;
  tiling_index : int;
  order_rank : int;
  explored : int;  (** feasible tilings *)
  evaluated : int;  (** valid schedules cost-evaluated *)
}

val eval_tiling :
  space ->
  idxs:int array ->
  tiles:int array ->
  (Nest.cost * int * int * Nest.schedule) option ref ->
  int
(** Evaluate every valid order of one complete tiling against the
    running best (shared with [Dse.Nest_bnb]'s leaves so both searches
    apply the identical tie-break); returns the number of schedules
    evaluated. *)

val exhaustive_in : space -> result option

val exhaustive : ?lattice:lattice -> Nest.t -> capacity:int -> result option
(** [None] when no feasible valid schedule exists. *)
