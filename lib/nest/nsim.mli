(** Resident-tile simulation of a nest schedule, generalizing
    [Fusecu_loopnest.Sim] to arbitrary rank and to window (halo)
    projections. Cost is O({!points}); callers bound it before
    simulating large problems. *)

val points : Nest.t -> Nest.schedule -> int

val eval : Nest.t -> Nest.schedule -> Nest.cost
(** Must equal [Nest.eval] on every schedule (the oracle's simulation
    leg enforces it). *)
