open Fusecu_util

(* Tiling space and exhaustive search over a nest, mirroring
   Dse.Space/Exhaustive so the MM instance enumerates the same points
   in the same order (axis 0 slowest, last axis fastest; and for an
   all-active 3-index nest the lexicographic permutations are exactly
   Order.all's sequence). Only the relative order of loops with more
   than one trip affects cost, so per tiling the search enumerates the
   permutations of the *active* (trips > 1) axes, completed with the
   inactive axes innermost in axis order. The winner is the
   lexicographic minimum of (total, tiling index, order rank) — the
   streaming first-seen rule, which Nest_bnb reproduces exactly. *)

type lattice = All | Divisors | Pow2

let tile_candidates lattice size =
  match lattice with
  | All -> Arith.range 1 size
  | Divisors -> Arith.divisors size
  | Pow2 -> Arith.dedup_sorted (size :: Arith.pow2s_upto size)

type space = {
  nest : Nest.t;
  capacity : int;
  cands : int array array;
  strides : int array;
  orders_cache : (int, int array list) Hashtbl.t;
}

let compile ?(lattice = Divisors) nest ~capacity =
  let n = Nest.rank nest in
  let cands =
    Array.init n (fun i ->
        Array.of_list (tile_candidates lattice nest.Nest.extents.(i)))
  in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * Array.length cands.(i + 1)
  done;
  { nest; capacity; cands; strides; orders_cache = Hashtbl.create 16 }

let nest_of sp = sp.nest

let capacity sp = sp.capacity

let candidates sp i = sp.cands.(i)

let raw_tilings sp = sp.strides.(0) * Array.length sp.cands.(0)

(* Candidate index per axis (0 for unassigned axes gives the subtree
   minimum, as in Bnb.min_subtree_idx). *)
let tiling_index sp idxs =
  let acc = ref 0 in
  Array.iteri (fun i j -> acc := !acc + (j * sp.strides.(i))) idxs;
  !acc

(* Lexicographic permutations of a sorted list. *)
let rec perms = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs)))
      xs

let orders sp ~trips =
  let n = Nest.rank sp.nest in
  let mask = ref 0 in
  for i = 0 to n - 1 do
    if trips.(i) > 1 then mask := !mask lor (1 lsl i)
  done;
  match Hashtbl.find_opt sp.orders_cache !mask with
  | Some os -> os
  | None ->
    let active = ref [] and inactive = ref [] in
    for i = n - 1 downto 0 do
      if trips.(i) > 1 then active := i :: !active else inactive := i :: !inactive
    done;
    let os =
      List.map (fun p -> Array.of_list (p @ !inactive)) (perms !active)
    in
    Hashtbl.replace sp.orders_cache !mask os;
    os

type result = {
  schedule : Nest.schedule;
  cost : Nest.cost;
  tiling_index : int;
  order_rank : int;
  explored : int;  (** feasible tilings *)
  evaluated : int;  (** valid schedules cost-evaluated *)
}

(* First-seen minimum of (total, tiling index, order rank); shared by
   the exhaustive scan and Nest_bnb's leaves so both return the same
   schedule bit-for-bit. *)
let consider best ~cost ~ti ~rank ~tiles ~order =
  match !best with
  | Some ((bc : Nest.cost), bti, brank, _)
    when (bc.Nest.total, bti, brank) <= (cost.Nest.total, ti, rank) ->
    ()
  | _ ->
    best :=
      Some (cost, ti, rank, { Nest.tiles = Array.copy tiles; order })

let eval_tiling sp ~idxs ~tiles best =
  let nest = sp.nest in
  let n = Nest.rank nest in
  let ti = tiling_index sp idxs in
  let trips =
    Array.init n (fun i -> Arith.ceil_div nest.Nest.extents.(i) tiles.(i))
  in
  let evaluated = ref 0 in
  List.iteri
    (fun rank order ->
      let s = { Nest.tiles; order } in
      if Nest.valid nest s then begin
        incr evaluated;
        let cost = Nest.eval nest s in
        consider best ~cost ~ti ~rank ~tiles ~order
      end)
    (orders sp ~trips);
  !evaluated

let exhaustive_in sp =
  let nest = sp.nest in
  let n = Nest.rank nest in
  let tiles = Array.make n 1 in
  let idxs = Array.make n 0 in
  let best = ref None in
  let explored = ref 0 and evaluated = ref 0 in
  let rec go axis =
    if axis = n then begin
      incr explored;
      evaluated := !evaluated + eval_tiling sp ~idxs ~tiles best
    end
    else begin
      let a = sp.cands.(axis) in
      let j = ref 0 and live = ref true in
      while !live && !j < Array.length a do
        tiles.(axis) <- a.(!j);
        idxs.(axis) <- !j;
        (* axes beyond [axis] still sit at tile 1, so this is the
           minimal-completion footprint — monotone in the candidate,
           hence the first infeasible value rules out its larger
           siblings (the Space.fold_tiling_range block-skip). *)
        if Nest.footprint_tiles nest tiles > sp.capacity then live := false
        else go (axis + 1);
        incr j
      done;
      tiles.(axis) <- 1;
      idxs.(axis) <- 0
    end
  in
  go 0;
  Option.map
    (fun (cost, ti, rank, schedule) ->
      { schedule;
        cost;
        tiling_index = ti;
        order_rank = rank;
        explored = !explored;
        evaluated = !evaluated })
    !best

let exhaustive ?lattice nest ~capacity =
  exhaustive_in (compile ?lattice nest ~capacity)
