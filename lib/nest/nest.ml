open Fusecu_util

(* Projective loop-nest IR (ROADMAP item 3).

   A nest is an iteration index set [0,e_0) x ... x [0,e_{n-1}) plus
   one projection per tensor: every tensor dimension is either a
   direct projection of a single index ([Point]) or a sliding window
   driven by an (outer, kernel) index pair ([Window] — the dimension
   coordinate is outer*stride + kernel*dilation, the conv2d input
   pattern; its tile holds the halo, so consecutive tiles overlap and
   per-sweep traffic exceeds the tensor size).

   Matmul is the 3-index instance with the [Point]-projected operands
   A(m,k), B(k,l), C(m,l); on it every function in this module is
   bit-identical to lib/loopnest's Cost/Sim (test_nest.ml locks the
   reduction over the whole schedule space).

   A tensor marked [internal] is a fused intermediate in the sense of
   the paper's Principle 4: it never moves through the memory
   hierarchy (zero traffic), but its tile occupies buffer space, and
   only schedules under which it is never revisited are [valid] — a
   revisited intermediate would have been spilled and refetched, which
   contradicts it being internal. *)

type access =
  | Point of int
  | Window of { outer : int; kernel : int; stride : int; dilation : int }

type tensor = { tname : string; dims : access list; internal : bool }

type t = {
  name : string;
  axes : string array;
  extents : int array;
  tensors : tensor list;
}

let rank t = Array.length t.extents

let access_axes = function
  | Point i -> [ i ]
  | Window { outer; kernel; _ } -> [ outer; kernel ]

let used_axes tensor =
  List.sort_uniq compare (List.concat_map access_axes tensor.dims)

let tensor ?(internal = false) tname dims = { tname; dims; internal }

let externals t = List.filter (fun x -> not x.internal) t.tensors

let internals t = List.filter (fun x -> x.internal) t.tensors

let make ~name ~axes ~extents ~tensors =
  let n = Array.length extents in
  if n < 1 then invalid_arg "Nest.make: empty index set";
  if Array.length axes <> n then
    invalid_arg "Nest.make: axes and extents disagree";
  Array.iter
    (fun e -> if e < 1 then invalid_arg "Nest.make: extents must be >= 1")
    extents;
  let seen = Hashtbl.create n in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a then
        invalid_arg (Printf.sprintf "Nest.make: duplicate axis %S" a);
      Hashtbl.add seen a ())
    axes;
  if tensors = [] then invalid_arg "Nest.make: no tensors";
  if List.for_all (fun x -> x.internal) tensors then
    invalid_arg "Nest.make: all tensors are internal";
  List.iter
    (fun x ->
      if x.dims = [] then
        invalid_arg (Printf.sprintf "Nest.make: tensor %S has no dims" x.tname);
      let used = ref [] in
      let use i =
        if i < 0 || i >= n then
          invalid_arg
            (Printf.sprintf "Nest.make: tensor %S references axis %d" x.tname i);
        if List.mem i !used then
          invalid_arg
            (Printf.sprintf "Nest.make: tensor %S uses axis %d twice" x.tname i);
        used := i :: !used
      in
      List.iter
        (function
          | Point i -> use i
          | Window { outer; kernel; stride; dilation } ->
            use outer;
            use kernel;
            if stride < 1 then invalid_arg "Nest.make: stride must be >= 1";
            if dilation < 1 then invalid_arg "Nest.make: dilation must be >= 1")
        x.dims)
    tensors;
  { name; axes; extents; tensors }

let access_extent t = function
  | Point i -> t.extents.(i)
  | Window { outer; kernel; stride; dilation } ->
    ((t.extents.(outer) - 1) * stride) + ((t.extents.(kernel) - 1) * dilation) + 1

let tensor_size t x =
  List.fold_left (fun acc a -> acc * access_extent t a) 1 x.dims

(* Iteration points of the (product) index set. For a fused nest with
   an internal intermediate this over-counts the true MAC work (the
   reduction is shared across the consumer sweep); it is the
   communication model's iteration space, not a FLOP counter. *)
let points t = Array.fold_left ( * ) 1 t.extents

(* ------------------------------------------------------------------ *)
(* Schedules: one tile size per index plus a loop order.               *)

type schedule = { tiles : int array; order : int array }

let schedule_make t ~tiles ~order =
  let n = rank t in
  if Array.length tiles <> n || Array.length order <> n then
    invalid_arg "Nest.schedule_make: wrong arity";
  Array.iteri
    (fun i tile ->
      if tile < 1 || tile > t.extents.(i) then
        invalid_arg
          (Printf.sprintf "Nest.schedule_make: tile %d out of [1,%d] on axis %s"
             tile t.extents.(i) t.axes.(i)))
    tiles;
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Nest.schedule_make: order is not a permutation";
      seen.(i) <- true)
    order;
  { tiles; order }

let trips t (s : schedule) i = Arith.ceil_div t.extents.(i) s.tiles.(i)

let tile_access_extent tiles = function
  | Point i -> tiles.(i)
  | Window { outer; kernel; stride; dilation } ->
    ((tiles.(outer) - 1) * stride) + ((tiles.(kernel) - 1) * dilation) + 1

(* Buffer residency of one tile per tensor (internal ones included:
   the fused intermediate lives in the buffer). On the matmul instance
   this is Tiling.footprint: tm*tk + tk*tl + tm*tl. *)
let footprint_tiles t tiles =
  List.fold_left
    (fun acc x ->
      acc + List.fold_left (fun p a -> p * tile_access_extent tiles a) 1 x.dims)
    0 t.tensors

let footprint t (s : schedule) = footprint_tiles t s.tiles

(* ------------------------------------------------------------------ *)
(* Analytic cost                                                       *)

type per_tensor = { fetches : int; traffic : int; revisit : int }

type cost = { per : per_tensor array; total : int }

let positions t (s : schedule) =
  let pos = Array.make (rank t) 0 in
  Array.iteri (fun p i -> pos.(i) <- p) s.order;
  pos

let trips_all t (s : schedule) = Array.init (rank t) (fun i -> trips t s i)

(* Number of sweeps over the tensor: the product of the trip counts of
   every tiled free index ordered outside the innermost tiled used
   index. Each time such a loop advances, the inner used loops have
   cycled through the tensor's tile grid, so the next sweep refetches
   it. This is exactly lib/loopnest's Cost.revisit on the MM instance
   (where each operand has a single free index). *)
let revisit_arrays t tensor ~trips ~pos =
  let used = used_axes tensor in
  let p_star =
    List.fold_left
      (fun acc u -> if trips.(u) > 1 then max acc pos.(u) else acc)
      (-1) used
  in
  if p_star < 0 then 1
  else begin
    let r = ref 1 in
    for i = 0 to rank t - 1 do
      if trips.(i) > 1 && pos.(i) < p_star && not (List.mem i used) then
        r := !r * trips.(i)
    done;
    !r
  end

let revisit_of t (s : schedule) tensor =
  revisit_arrays t tensor ~trips:(trips_all t s) ~pos:(positions t s)

(* Traffic of one full sweep over a tensor's tile grid, edge-clipped.
   [Point] dimensions partition exactly (ragged tiles sum to the
   extent); [Window] dimensions overlap by the halo, in closed form:
   sum over (outer tile a, kernel tile b) of
   (ext_o(a)-1)*stride + (ext_k(b)-1)*dilation + 1. *)
let access_sweep t trips = function
  | Point i -> t.extents.(i)
  | Window { outer; kernel; stride; dilation } ->
    let eo = t.extents.(outer) and ek = t.extents.(kernel) in
    let no = trips.(outer) and nk = trips.(kernel) in
    (stride * nk * (eo - no)) + (dilation * no * (ek - nk)) + (no * nk)

let eval_tensor t ~trips ~pos tensor =
  let r = revisit_arrays t tensor ~trips ~pos in
  let sweep_fetches =
    List.fold_left (fun acc u -> acc * trips.(u)) 1 (used_axes tensor)
  in
  let sweep_traffic =
    List.fold_left (fun acc a -> acc * access_sweep t trips a) 1 tensor.dims
  in
  { fetches = r * sweep_fetches; traffic = r * sweep_traffic; revisit = r }

let eval t (s : schedule) =
  let trips = trips_all t s and pos = positions t s in
  let per =
    Array.of_list
      (List.map
         (fun x ->
           if x.internal then { fetches = 0; traffic = 0; revisit = 0 }
           else eval_tensor t ~trips ~pos x)
         t.tensors)
  in
  { per; total = Array.fold_left (fun acc p -> acc + p.traffic) 0 per }

(* A schedule is valid iff every internal (fused-intermediate) tensor
   is revisit-free: its tile is fully produced and consumed within one
   residency. This is the generalization of Fused.validate's
   "producer C non-redundant" requirement. *)
let valid t (s : schedule) =
  let trips = trips_all t s and pos = positions t s in
  List.for_all
    (fun x -> revisit_arrays t x ~trips ~pos = 1)
    (internals t)

let per_tensor_named t (c : cost) =
  List.map2 (fun x p -> (x.tname, p)) t.tensors (Array.to_list c.per)

let pp_schedule t fmt (s : schedule) =
  let tile fmt i = Format.fprintf fmt "%s=%d" t.axes.(i) s.tiles.(i) in
  Format.fprintf fmt "@[tiles(%a)@ order(%s)@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") tile)
    (List.init (rank t) Fun.id)
    (String.concat ">" (List.map (fun i -> t.axes.(i)) (Array.to_list s.order)))

let schedule_to_string t s = Format.asprintf "%a" (pp_schedule t) s

let pp fmt t =
  let pp_access fmt = function
    | Point i -> Format.fprintf fmt "%s" t.axes.(i)
    | Window { outer; kernel; stride; dilation } ->
      Format.fprintf fmt "%s*%d+%s*%d" t.axes.(outer) stride t.axes.(kernel)
        dilation
  in
  let pp_tensor fmt x =
    Format.fprintf fmt "%s%s[%a]" x.tname
      (if x.internal then "~" else "")
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
         pp_access)
      x.dims
  in
  Format.fprintf fmt "@[%s:@ %s@ %a@]" t.name
    (String.concat "x"
       (Array.to_list
          (Array.mapi (fun i e -> Printf.sprintf "%s=%d" t.axes.(i) e) t.extents)))
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_tensor)
    t.tensors
