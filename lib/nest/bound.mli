(** Generic communication lower bounds for projective nests. *)

val min_sweep : Nest.t -> Nest.tensor -> int
(** Minimum achievable one-sweep traffic of a tensor over the whole
    tiling lattice. Equal to [Nest.tensor_size] for pure-[Point]
    tensors; strictly less for a skipping window (stride beyond the
    dilated kernel span), where a coarse tiling touches fewer
    elements than the window span. *)

val ideal : Nest.t -> int
(** Unbounded-buffer bound: the sum of the external tensors' minimal
    sweeps (each must cross the memory boundary at least once per
    run). On the matmul instance this is exactly
    [Fusecu_core.Lower_bound.intra] = [Matmul.ideal_ma] (locked by
    test_nest.ml). *)

val penalized : Nest.t -> trips:int array -> int
(** Admissible branch-and-bound cut given per-axis lower bounds on the
    trip counts: [ideal] plus the conflict-graph revisit penalties
    that no loop order can avoid (crossed-free-index exclusion,
    adversary keeps the max-weight independent set free). Reduces to
    [Dse.Bnb]'s pairwise-exclusion bound on matmul. *)
