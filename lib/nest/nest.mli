(** Projective loop-nest IR (ROADMAP item 3).

    An iteration index set plus one projection map per tensor. Each
    tensor dimension is a direct index projection ([Point]) or a
    sliding window over an (outer, kernel) index pair ([Window] — the
    conv2d input pattern: dimension coordinate
    [outer*stride + kernel*dilation], so consecutive tiles overlap by
    the halo). The paper's matmul model is the 3-index instance with
    operands A(m,k), B(k,l), C(m,l); on it, [footprint], [eval] and
    the simulator are bit-identical to [Fusecu_loopnest]'s
    [Tiling.footprint]/[Cost.eval]/[Sim.eval] (locked by
    test_nest.ml).

    A tensor marked [internal] is a Principle-4 fused intermediate: it
    contributes no memory traffic, occupies buffer space, and renders
    a schedule invalid unless it is revisit-free. *)

type access =
  | Point of int  (** tensor dimension = one iteration index *)
  | Window of { outer : int; kernel : int; stride : int; dilation : int }
      (** tensor dimension = [outer*stride + kernel*dilation] *)

type tensor = private { tname : string; dims : access list; internal : bool }

type t = private {
  name : string;
  axes : string array;  (** one name per index *)
  extents : int array;
  tensors : tensor list;
}

val tensor : ?internal:bool -> string -> access list -> tensor
(** Bare constructor; validated by {!make}. *)

val make :
  name:string ->
  axes:string array ->
  extents:int array ->
  tensors:tensor list ->
  t
(** Validates: non-empty index set with distinct axis names and
    extents [>= 1]; every tensor references in-range axes, no axis
    twice; window stride/dilation [>= 1]; at least one non-internal
    tensor. Raises [Invalid_argument] otherwise. *)

val rank : t -> int
(** Number of iteration indices. *)

val used_axes : tensor -> int list
(** Sorted indices a tensor's projection depends on. *)

val externals : t -> tensor list

val internals : t -> tensor list

val access_extent : t -> access -> int
(** Full extent of one tensor dimension ([Window]: the reachable
    input span [(e_o-1)*stride + (e_k-1)*dilation + 1]). *)

val tensor_size : t -> tensor -> int

val points : t -> int
(** Iteration points of the product index set (the communication
    model's iteration space, not a FLOP counter for fused nests). *)

(** {1 Schedules} *)

type schedule = { tiles : int array; order : int array }
(** One tile size per index, and the loop order as a permutation of
    axis ids, outermost first. *)

val schedule_make : t -> tiles:int array -> order:int array -> schedule
(** Validated constructor: tiles within [[1, extent]], [order] a
    permutation. *)

val trips : t -> schedule -> int -> int

val tile_access_extent : int array -> access -> int

val footprint_tiles : t -> int array -> int

val footprint : t -> schedule -> int
(** Buffer residency of one tile per tensor, internal included. *)

(** {1 Analytic cost} *)

type per_tensor = { fetches : int; traffic : int; revisit : int }

type cost = { per : per_tensor array; total : int }
(** [per] is aligned with [tensors]; internal tensors report zeros;
    [total] sums external traffic. *)

val revisit_of : t -> schedule -> tensor -> int

val eval : t -> schedule -> cost
(** Traffic = revisit x per-sweep traffic, where revisit multiplies
    the trip counts of tiled free loops ordered outside the innermost
    tiled used loop, and a sweep pays the edge-clipped tile grid
    (windows include halo overlap). Agrees with {!Nsim.eval}
    everywhere and with [Cost.eval] on the MM instance. *)

val valid : t -> schedule -> bool
(** Every internal tensor is revisit-free. *)

val per_tensor_named : t -> cost -> (string * per_tensor) list

val pp : Format.formatter -> t -> unit

val pp_schedule : t -> Format.formatter -> schedule -> unit

val schedule_to_string : t -> schedule -> string
