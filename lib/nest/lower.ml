open Fusecu_tensor
open Fusecu_loopnest

(* Lowerings of the tensor operators into projective nests. Axis order
   is part of each contract: test_nest.ml locks the MM instance
   bit-for-bit against the legacy Tiling/Order/Cost stack via
   [dim_axis]/[schedule_of_mm]. *)

let of_matmul (mm : Matmul.t) =
  Nest.make ~name:mm.Matmul.name ~axes:[| "m"; "k"; "l" |]
    ~extents:[| mm.Matmul.m; mm.Matmul.k; mm.Matmul.l |]
    ~tensors:
      [
        Nest.tensor "A" [ Nest.Point 0; Nest.Point 1 ];
        Nest.tensor "B" [ Nest.Point 1; Nest.Point 2 ];
        Nest.tensor "C" [ Nest.Point 0; Nest.Point 2 ];
      ]

let dim_axis = function Dim.M -> 0 | Dim.K -> 1 | Dim.L -> 2

let schedule_of_mm nest ~tiling ~order =
  let tiles =
    Array.of_list
      (List.map (fun d -> Tiling.get tiling d) [ Dim.M; Dim.K; Dim.L ])
  in
  let order = Array.of_list (List.map dim_axis (Order.dims order)) in
  Nest.schedule_make nest ~tiles ~order

let of_chain chain =
  let ops = Chain.ops chain in
  let n = List.length ops in
  let first = List.hd ops in
  let m = first.Matmul.m in
  (* inner dims d0..dn: d0 = first.k, then each op's l *)
  let ds = first.Matmul.k :: List.map (fun (op : Matmul.t) -> op.Matmul.l) ops in
  let axes =
    Array.of_list ("m" :: List.mapi (fun i _ -> Printf.sprintf "d%d" i) ds)
  in
  let extents = Array.of_list (m :: ds) in
  let weights =
    List.mapi
      (fun i (op : Matmul.t) ->
        Nest.tensor
          (Printf.sprintf "W%d[%s]" i op.Matmul.name)
          [ Nest.Point (i + 1); Nest.Point (i + 2) ])
      ops
  in
  let outs =
    List.mapi
      (fun i _ ->
        Nest.tensor
          ~internal:(i < n - 1)
          (Printf.sprintf "C%d" i)
          [ Nest.Point 0; Nest.Point (i + 2) ])
      ops
  in
  Nest.make
    ~name:(Printf.sprintf "chain%d[%s]" n first.Matmul.name)
    ~axes ~extents
    ~tensors:((Nest.tensor "A" [ Nest.Point 0; Nest.Point 1 ] :: weights) @ outs)

let of_conv (cv : Conv.t) =
  let p = Conv.output_height cv and q = Conv.output_width cv in
  let window ~outer ~kernel =
    Nest.Window
      { outer; kernel; stride = cv.Conv.stride; dilation = cv.Conv.dilation }
  in
  Nest.make ~name:cv.Conv.name
    ~axes:[| "n"; "ko"; "oh"; "ow"; "c"; "r"; "s" |]
    ~extents:[| cv.Conv.n; cv.Conv.k; p; q; cv.Conv.c; cv.Conv.r; cv.Conv.s |]
    ~tensors:
      [
        (* padded input activation: the window spans reach
           (p-1)*stride + (r-1)*dilation + 1 <= h + 2*padding rows *)
        Nest.tensor "In"
          [
            Nest.Point 0;
            Nest.Point 4;
            window ~outer:2 ~kernel:5;
            window ~outer:3 ~kernel:6;
          ];
        Nest.tensor "W"
          [ Nest.Point 1; Nest.Point 4; Nest.Point 5; Nest.Point 6 ];
        Nest.tensor "Out"
          [ Nest.Point 0; Nest.Point 1; Nest.Point 2; Nest.Point 3 ];
      ]

let of_conv_im2col cv = of_matmul (Conv.to_matmul cv)

let batched_mm ?(name = "bmm") ~b ~m ~k ~l () =
  if b < 1 || m < 1 || k < 1 || l < 1 then
    invalid_arg "Lower.batched_mm: extents must be >= 1";
  Nest.make ~name
    ~axes:[| "b"; "m"; "k"; "l" |]
    ~extents:[| b; m; k; l |]
    ~tensors:
      [
        Nest.tensor "A" [ Nest.Point 0; Nest.Point 1; Nest.Point 2 ];
        Nest.tensor "B" [ Nest.Point 0; Nest.Point 2; Nest.Point 3 ];
        Nest.tensor "C" [ Nest.Point 0; Nest.Point 1; Nest.Point 3 ];
      ]

let grouped_mm ?(name = "gmm") ~groups ~heads ~m ~k ~l () =
  if groups < 1 || heads < 1 || m < 1 || k < 1 || l < 1 then
    invalid_arg "Lower.grouped_mm: extents must be >= 1";
  Nest.make ~name
    ~axes:[| "g"; "h"; "m"; "k"; "l" |]
    ~extents:[| groups; heads; m; k; l |]
    ~tensors:
      [
        Nest.tensor "A"
          [ Nest.Point 0; Nest.Point 1; Nest.Point 2; Nest.Point 3 ];
        (* the GQA sharing pattern: one B per group, free in the head
           axis *)
        Nest.tensor "B" [ Nest.Point 0; Nest.Point 3; Nest.Point 4 ];
        Nest.tensor "C"
          [ Nest.Point 0; Nest.Point 1; Nest.Point 2; Nest.Point 4 ];
      ]

let attention_pair ?(name = "attn") ?dv ~seq_q ~seq_k ~d () =
  let dv = Option.value dv ~default:d in
  if seq_q < 1 || seq_k < 1 || d < 1 || dv < 1 then
    invalid_arg "Lower.attention_pair: extents must be >= 1";
  Nest.make ~name
    ~axes:[| "m"; "n"; "d"; "e" |]
    ~extents:[| seq_q; seq_k; d; dv |]
    ~tensors:
      [
        Nest.tensor "Q" [ Nest.Point 0; Nest.Point 2 ];
        Nest.tensor "K" [ Nest.Point 1; Nest.Point 2 ];
        Nest.tensor "V" [ Nest.Point 1; Nest.Point 3 ];
        Nest.tensor ~internal:true "S" [ Nest.Point 0; Nest.Point 1 ];
        Nest.tensor "O" [ Nest.Point 0; Nest.Point 3 ];
      ]
