(* Resident-tile simulator for arbitrary nests — the generalization of
   lib/loopnest/sim.ml's fixed 3-deep walk. One resident tile per
   external tensor, keyed by the tile coordinates of the axes the
   tensor's projection uses; whenever the key changes the whole
   (edge-clipped) tile is fetched. The oracle holds Nest.eval to these
   numbers on every schedule it samples. *)

let points t (s : Nest.schedule) =
  let n = Nest.rank t in
  let p = ref 1 in
  for i = 0 to n - 1 do
    p := !p * Nest.trips t s i
  done;
  !p

let eval t (s : Nest.schedule) : Nest.cost =
  let n = Nest.rank t in
  let trips = Array.init n (Nest.trips t s) in
  (* current tile coordinate per axis *)
  let coords = Array.make n 0 in
  let clipped i =
    let tile = s.Nest.tiles.(i) in
    min tile (t.Nest.extents.(i) - (coords.(i) * tile))
  in
  let access_tile_extent = function
    | Nest.Point i -> clipped i
    | Nest.Window { outer; kernel; stride; dilation } ->
      ((clipped outer - 1) * stride) + ((clipped kernel - 1) * dilation) + 1
  in
  let tensors = Array.of_list t.Nest.tensors in
  let nt = Array.length tensors in
  let used = Array.map Nest.used_axes tensors in
  let resident : int list option array = Array.make nt None in
  let fetch_counts = Array.init nt (fun _ -> Hashtbl.create 64) in
  let fetches = Array.make nt 0 in
  let traffic = Array.make nt 0 in
  let visit () =
    for x = 0 to nt - 1 do
      if not tensors.(x).Nest.internal then begin
        let key = List.map (fun u -> coords.(u)) used.(x) in
        if resident.(x) <> Some key then begin
          resident.(x) <- Some key;
          fetches.(x) <- fetches.(x) + 1;
          traffic.(x) <-
            traffic.(x)
            + List.fold_left
                (fun acc a -> acc * access_tile_extent a)
                1 tensors.(x).Nest.dims;
          let tbl = fetch_counts.(x) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        end
      end
    done
  in
  (* odometer over the loop order, innermost position fastest *)
  let rec bump p =
    if p < 0 then false
    else begin
      let ax = s.Nest.order.(p) in
      coords.(ax) <- coords.(ax) + 1;
      if coords.(ax) = trips.(ax) then begin
        coords.(ax) <- 0;
        bump (p - 1)
      end
      else true
    end
  in
  let continue_ = ref true in
  while !continue_ do
    visit ();
    continue_ := bump (n - 1)
  done;
  let per =
    Array.init nt (fun x ->
        if tensors.(x).Nest.internal then
          { Nest.fetches = 0; traffic = 0; revisit = 0 }
        else begin
          let revisit =
            Hashtbl.fold (fun _ c acc -> max acc c) fetch_counts.(x) 0
          in
          { Nest.fetches = fetches.(x); traffic = traffic.(x); revisit }
        end)
  in
  { Nest.per; total = Array.fold_left (fun acc p -> acc + p.Nest.traffic) 0 per }
