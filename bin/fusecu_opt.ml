(* fusecu_opt: command-line front end to the principle-based dataflow
   optimizer and the FuseCU architecture model.

   Subcommands:
     intra    - optimal dataflow for one matmul under a buffer
     fuse     - fusion decision for a producer/consumer pair
     regime   - buffer-regime table for an operator
     search   - compare the principles against exhaustive / genetic DSE
     eval     - evaluate a Table-II model on every platform
     explain  - prose derivation of a dataflow choice
     trace    - tile fetch/compute trace of a dataflow
     hierarchy- two-level (buffer + register) planning
     chain    - whole-chain fusion planning
     plan     - whole-model partitioning into fusion groups
     area     - FuseCU area breakdown
     simulate - run a fused matmul chain on the structural array model *)

open Cmdliner
open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let dim_arg name doc =
  Arg.(required & opt (some int) None & info [ name ] ~docv:"N" ~doc)

let buffer_arg =
  let parse s =
    match Fusecu_util.Units.parse_bytes s with
    | Ok bytes when bytes >= 1 -> Ok (Buffer.make bytes)
    | Ok _ -> Error (`Msg "buffer must be at least one byte")
    | Error e -> Error (`Msg e)
  in
  let print fmt (b : Buffer.t) =
    Format.pp_print_string fmt (Fusecu_util.Units.pp_bytes b.bytes)
  in
  let buffer_conv = Arg.conv ~docv:"SIZE" (parse, print) in
  Arg.(
    value
    & opt buffer_conv (Buffer.of_kib 512)
    & info [ "b"; "buffer" ] ~docv:"SIZE" ~doc:"On-chip buffer size (e.g. 512KB, 32MB).")

let mode_arg =
  let modes =
    [ ("exact", Mode.Exact); ("divisors", Mode.Divisors); ("pow2", Mode.Pow2) ]
  in
  Arg.(
    value
    & opt (enum modes) Mode.Divisors
    & info [ "mode" ] ~docv:"MODE" ~doc:"Tile lattice: exact, divisors or pow2.")

let mkl ?(prefix = "") () =
  let p n = prefix ^ n in
  Term.(
    const (fun m k l -> Matmul.make ~m ~k ~l ())
    $ dim_arg (p "m") "Rows of A (and C)."
    $ dim_arg (p "k") "Columns of A / rows of B (reduction dim)."
    $ dim_arg (p "l") "Columns of B (and C).")

(* ------------------------------------------------------------------ *)
(* Observability (shared by sweep, search, serve)                      *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Profile the run: collect spans (enumerate / evaluate / merge \
              phases, pool chunks, service batches) and write a Chrome \
              trace-event JSON profile to FILE on exit, loadable in \
              chrome://tracing or Perfetto. Tracing never writes to stdout, \
              so command output is unchanged.")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Structured NDJSON logging to stderr: debug, info, warn, error \
              or off (default: \\$FUSECU_LOG, else off). Logs never touch \
              stdout.")

(* Apply the requested logging level and, when tracing, bracket [f] with
   collection so the profile is written even if [f] raises. *)
let with_observability ~trace ~log_level f =
  (match log_level with
  | None -> ()
  | Some s -> (
    match Fusecu_util.Log.level_of_string s with
    | Ok lvl -> Fusecu_util.Log.set_level lvl
    | Error e ->
      prerr_endline ("--log-level: " ^ e);
      exit 2));
  match trace with
  | None -> f ()
  | Some path ->
    Fusecu_util.Trace.start ();
    Fun.protect
      ~finally:(fun () ->
        Fusecu_util.Trace.stop ();
        Fusecu_util.Trace.export path)
      f

(* ------------------------------------------------------------------ *)
(* intra                                                               *)

let intra_cmd =
  let run op buf mode =
    match Intra.optimize ~mode op buf with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok plan ->
      Format.printf "%a@." Intra.pp_plan plan;
      Format.printf "redundancy over the unbounded lower bound: %.3f@."
        (Intra.redundancy plan)
  in
  let term = Term.(const run $ mkl () $ buffer_arg $ mode_arg) in
  Cmd.v
    (Cmd.info "intra" ~doc:"Principle-based intra-operator dataflow for one matmul.")
    term

(* ------------------------------------------------------------------ *)
(* fuse                                                                *)

let fuse_cmd =
  let run op1 l2 buf mode =
    let op2 =
      Matmul.make ~name:"consumer" ~m:op1.Matmul.m ~k:op1.Matmul.l ~l:l2 ()
    in
    let pair = Fused.make_pair_exn op1 op2 in
    match Fusion.plan_pair ~mode pair buf with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok decision ->
      Format.printf "pair: %a | %a@." Matmul.pp op1 Matmul.pp op2;
      Format.printf "%a@." Fusion.pp_decision decision
  in
  let l2 =
    Arg.(
      required
      & opt (some int) None
      & info [ "l2" ] ~docv:"N" ~doc:"Columns of the consumer's weight matrix D.")
  in
  let term = Term.(const run $ mkl () $ l2 $ buffer_arg $ mode_arg) in
  Cmd.v
    (Cmd.info "fuse"
       ~doc:"Fusion decision for A(M,K) x B(K,L) = C followed by C x D(L,L2) = E.")
    term

(* ------------------------------------------------------------------ *)
(* regime                                                              *)

let regime_cmd =
  let run op =
    let th = Regime.thresholds op in
    Format.printf "%a@." Matmul.pp op;
    let t =
      Fusecu_util.Table.create [ "Regime"; "Buffer range (elements)"; "Dataflow" ]
    in
    let pp_classes regime =
      String.concat " or "
        (List.map Nra.to_string (Regime.expected_classes regime))
    in
    let rows =
      [ [ "tiny"; Printf.sprintf "<= %d" th.tiny_max; pp_classes Regime.Tiny ];
        [ "small"; Printf.sprintf "%d - %d" (th.tiny_max + 1) th.small_max;
          pp_classes Regime.Small ];
        [ "medium"; Printf.sprintf "%d - %d" (th.small_max + 1) th.medium_max;
          pp_classes Regime.Medium ];
        [ "large"; Printf.sprintf "> %d" th.medium_max; pp_classes Regime.Large ] ]
    in
    Fusecu_util.Table.print (Fusecu_util.Table.add_rows t rows)
  in
  let term = Term.(const run $ mkl ()) in
  Cmd.v
    (Cmd.info "regime" ~doc:"Buffer-size regimes and predicted NRA classes.")
    term

(* ------------------------------------------------------------------ *)
(* search                                                              *)

let search_cmd =
  let run op buf trace log_level =
    with_observability ~trace ~log_level @@ fun () ->
    let principle = Intra.optimize_exn op buf in
    Format.printf "principles: MA=%s %a@."
      (Fusecu_util.Units.pp_count (Intra.ma principle))
      Schedule.pp principle.schedule;
    (match Fusecu_dse.Exhaustive.search op buf with
    | Some r ->
      Format.printf "exhaustive: MA=%s %a (%d schedules)@."
        (Fusecu_util.Units.pp_count r.cost.Cost.total)
        Schedule.pp r.schedule r.explored
    | None -> print_endline "exhaustive: infeasible");
    (match
       Fusecu_dse.Bnb.search_with_stats ~seed:principle.Intra.schedule op buf
     with
    | Some r, stats ->
      Format.printf "bnb:        MA=%s %a (%d evaluations, %d pruned)@."
        (Fusecu_util.Units.pp_count r.cost.Cost.total)
        Schedule.pp r.schedule r.explored
        (stats.Fusecu_dse.Bnb.pruned_bound
        + stats.Fusecu_dse.Bnb.pruned_infeasible)
    | None, _ -> print_endline "bnb: infeasible");
    match Fusecu_dse.Genetic.search op buf with
    | Some r ->
      Format.printf "genetic:    MA=%s %a (%d evaluations)@."
        (Fusecu_util.Units.pp_count r.cost.Cost.total)
        Schedule.pp r.schedule r.explored
    | None -> print_endline "genetic: infeasible"
  in
  let term =
    Term.(const run $ mkl () $ buffer_arg $ trace_file_arg $ log_level_arg)
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Compare the principles against searched baselines.")
    term

(* ------------------------------------------------------------------ *)
(* eval                                                                *)

let eval_cmd =
  let run model_name buf =
    match Fusecu_workloads.Zoo.find model_name with
    | None ->
      Printf.eprintf "unknown model %S (try: %s)\n" model_name
        (String.concat ", "
           (List.map
              (fun (m : Fusecu_workloads.Model.t) -> m.name)
              Fusecu_workloads.Zoo.all));
      exit 1
    | Some model ->
      let w = Fusecu_workloads.Workload.of_model model in
      let t =
        Fusecu_util.Table.create
          [ "Platform"; "Traffic"; "Cycles"; "Utilization" ]
      in
      let rows =
        List.map
          (fun p ->
            match Fusecu_arch.Perf.eval_workload p buf w with
            | Ok e ->
              [ p.Fusecu_arch.Platform.name;
                Fusecu_util.Units.pp_count e.traffic;
                Fusecu_util.Units.pp_count e.cycles;
                Fusecu_util.Units.pp_pct e.utilization ]
            | Error e -> [ p.Fusecu_arch.Platform.name; "error: " ^ e ])
          Fusecu_arch.Platform.all
      in
      Fusecu_util.Table.print (Fusecu_util.Table.add_rows t rows)
  in
  let model =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Model name from Table II (e.g. Bert, LLaMA2).")
  in
  let term = Term.(const run $ model $ buffer_arg) in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a transformer layer on every platform.")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run op l2 buf mode =
    match l2 with
    | None -> (
      match Explain.intra ~mode op buf with
      | Ok text -> print_string text
      | Error e ->
        prerr_endline e;
        exit 1)
    | Some l2 -> (
      let op2 =
        Matmul.make ~name:"consumer" ~m:op.Matmul.m ~k:op.Matmul.l ~l:l2 ()
      in
      let pair = Fused.make_pair_exn op op2 in
      match Explain.fusion ~mode pair buf with
      | Ok text -> print_string text
      | Error e ->
        prerr_endline e;
        exit 1)
  in
  let l2 =
    Arg.(
      value
      & opt (some int) None
      & info [ "l2" ]
          ~docv:"N"
          ~doc:"Explain the fusion with a consumer C x D(L,L2) instead of the \
                intra dataflow.")
  in
  let term = Term.(const run $ mkl () $ l2 $ buffer_arg $ mode_arg) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Derive, in prose, why the principles choose a dataflow.")
    term

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let run op buf mode max_events =
    match Intra.optimize ~mode op buf with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok plan ->
      Format.printf "schedule: %a@." Schedule.pp plan.schedule;
      print_string (Trace.render ~max_events op plan.schedule)
  in
  let max_events =
    Arg.(
      value & opt int 48
      & info [ "max-events" ] ~docv:"N" ~doc:"Events to print before truncating.")
  in
  let term = Term.(const run $ mkl () $ buffer_arg $ mode_arg $ max_events) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the tile fetch/compute trace of the optimized dataflow.")
    term

(* ------------------------------------------------------------------ *)
(* hierarchy                                                           *)

let hierarchy_cmd =
  let run op buf pe_dim =
    let stack =
      Fusecu_hierarchy.Stack.tpu_like ~pe_dim ~buffer_bytes:buf.Buffer.bytes ()
    in
    match Fusecu_hierarchy.Stack.optimize stack op with
    | Ok plan -> Format.printf "%a@." Fusecu_hierarchy.Stack.pp_plan plan
    | Error e ->
      prerr_endline e;
      exit 1
  in
  let pe_dim =
    Arg.(
      value & opt int 128
      & info [ "pe-dim" ] ~docv:"N" ~doc:"Compute-unit dimension (register level N^2).")
  in
  let term = Term.(const run $ mkl () $ buffer_arg $ pe_dim) in
  Cmd.v
    (Cmd.info "hierarchy"
       ~doc:"Apply the principles through the buffer and register levels.")
    term

(* ------------------------------------------------------------------ *)
(* chain                                                               *)

let chain_cmd =
  let run m ks buf =
    let chain = Chain.of_dims ~name:"chain" ~m ks in
    match Multi_fusion.plan chain buf with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok decision ->
      Format.printf "chain: %a@." Chain.pp chain;
      (match decision with
      | Multi_fusion.Full_fusion { traffic; _ } ->
        Format.printf "whole-chain fusion: traffic %s (fused bound %s)@."
          (Fusecu_util.Units.pp_count traffic)
          (Fusecu_util.Units.pp_count (Chain.ideal_ma_fused chain))
      | Multi_fusion.Fallback plan ->
        Format.printf "pairwise plan: traffic %s@."
          (Fusecu_util.Units.pp_count plan.Planner.traffic))
  in
  let m_arg =
    Arg.(required & opt (some int) None & info [ "m" ] ~docv:"N" ~doc:"Shared row dimension.")
  in
  let ks =
    Arg.(
      non_empty
      & pos_all int []
      & info [] ~docv:"K0 K1 ..." ~doc:"Chain dims: (m,K0,K1), (m,K1,K2), ...")
  in
  let term = Term.(const run $ m_arg $ ks $ buffer_arg) in
  Cmd.v
    (Cmd.info "chain"
       ~doc:"Plan a multi-operator chain (whole-chain fusion vs pairwise).")
    term

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let sweep_cmd =
  let run op from_b to_b trace log_level =
    with_observability ~trace ~log_level @@ fun () ->
    let points =
      Buffer_sweep.run op
        ~bytes:
          (Buffer_sweep.geometric ~from_bytes:from_b.Buffer.bytes
             ~to_bytes:to_b.Buffer.bytes ~steps_per_octave:2 ())
    in
    let t =
      Fusecu_util.Table.create [ "Buffer"; "MA"; "Class"; "vs bound" ]
    in
    let rows =
      List.map
        (fun (p : Buffer_sweep.point) ->
          [ Fusecu_util.Units.pp_bytes p.bytes;
            Fusecu_util.Units.pp_count p.ma;
            Nra.to_string p.nra;
            Printf.sprintf "%.2fx" p.redundancy ])
        points
    in
    Fusecu_util.Table.print (Fusecu_util.Table.add_rows t rows);
    List.iter
      (fun (bytes, before, after) ->
        Printf.printf "transition at %s: %s -> %s\n"
          (Fusecu_util.Units.pp_bytes bytes)
          (Nra.to_string before) (Nra.to_string after))
      (Buffer_sweep.transitions points)
  in
  let size_opt name default doc =
    let parse s =
      match Fusecu_util.Units.parse_bytes s with
      | Ok bytes when bytes >= 1 -> Ok (Buffer.make bytes)
      | Ok _ -> Error (`Msg "size must be positive")
      | Error e -> Error (`Msg e)
    in
    let print fmt (b : Buffer.t) =
      Format.pp_print_string fmt (Fusecu_util.Units.pp_bytes b.bytes)
    in
    Arg.(
      value
      & opt (conv ~docv:"SIZE" (parse, print)) (Buffer.make default)
      & info [ name ] ~docv:"SIZE" ~doc)
  in
  let term =
    Term.(
      const run $ mkl ()
      $ size_opt "from" 1024 "Smallest buffer in the sweep."
      $ size_opt "to" (32 * 1024 * 1024) "Largest buffer in the sweep."
      $ trace_file_arg $ log_level_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep buffer sizes and report the chosen dataflow class at each.")
    term

(* ------------------------------------------------------------------ *)
(* graph                                                               *)

let graph_cmd =
  let run model_name layers dot =
    match Fusecu_workloads.Zoo.find model_name with
    | None ->
      Printf.eprintf "unknown model %S\n" model_name;
      exit 1
    | Some model ->
      let g = Fusecu_workloads.Graph.of_model model in
      let g =
        if layers > 1 then Fusecu_workloads.Graph.stack g ~layers else g
      in
      if dot then print_string (Fusecu_workloads.Graph.to_dot g)
      else begin
        Format.printf "%a@." Fusecu_workloads.Graph.pp g;
        Printf.printf "critical path (unit cost): %d; sequential: %d\n"
          (Fusecu_workloads.Graph.critical_path g ~cost:(fun _ -> 1))
          (Fusecu_workloads.Graph.sequential g ~cost:(fun _ -> 1))
      end
  in
  let model =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Model name from Table II.")
  in
  let layers =
    Arg.(value & opt int 1 & info [ "layers" ] ~docv:"N" ~doc:"Stack N layers.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let term = Term.(const run $ model $ layers $ dot) in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print a model's operator dependency graph.")
    term

(* ------------------------------------------------------------------ *)
(* area                                                                *)

let area_cmd =
  let run () = Format.printf "%a@." Fusecu_arch.Area.pp (Fusecu_arch.Area.fusecu_breakdown ()) in
  Cmd.v (Cmd.info "area" ~doc:"FuseCU 28 nm area breakdown.") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let run socket store_path batch no_cache cache_entries mapper metrics_file
      metrics_addr slow_ms max_conns timeout max_line trace log_level =
    with_observability ~trace ~log_level @@ fun () ->
    let default = Fusecu_service.Engine.default_config () in
    let cache_entries =
      match cache_entries with Some n -> max 0 n | None -> default.cache_entries
    in
    let config =
      { default with
        cache_enabled = (not no_cache) && cache_entries > 0;
        cache_entries;
        slow_log_ms = slow_ms;
        mapper = Option.value mapper ~default:default.mapper }
    in
    let store =
      match store_path with
      | None -> None
      | Some path -> (
        match Fusecu_service.Store.open_ ~path with
        | Ok s -> Some s
        | Error msg ->
          prerr_endline msg;
          exit 1)
    in
    let engine = Fusecu_service.Engine.create ?store config in
    let exporter =
      match metrics_addr with
      | None -> None
      | Some addr -> (
        try
          Some
            (Fusecu_service.Server.start_metrics_exporter
               ~render:(fun () -> Fusecu_service.Engine.prometheus engine)
               ~addr)
        with
        | Invalid_argument msg | Failure msg ->
          prerr_endline msg;
          exit 1
        | Unix.Unix_error (e, _, _) ->
          prerr_endline
            (Printf.sprintf "metrics-addr %s: %s" addr (Unix.error_message e));
          exit 1)
    in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Fusecu_service.Server.stop_metrics_exporter exporter;
        Option.iter Fusecu_service.Store.close store)
      (fun () ->
        match socket with
        | Some path -> (
          let socket_config =
            { Fusecu_service.Server.max_conns; idle_timeout = timeout; max_line }
          in
          try
            Fusecu_service.Server.serve_socket engine ~batch
              ~config:socket_config ~path ()
          with Failure msg | Invalid_argument msg ->
            prerr_endline msg;
            exit 1)
        | None -> Fusecu_service.Server.serve_channel engine ~batch stdin stdout);
    match metrics_file with
    | None -> ()
    | Some file ->
      let dump =
        Fusecu_util.Json.print_hum
          (Fusecu_service.Engine.metrics_result engine)
      in
      if file = "-" then prerr_endline dump
      else
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (dump ^ "\n"))
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket instead of stdin/stdout.")
  in
  let store_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:"Persist the plan cache to an append-only, CRC-framed NDJSON \
                store at FILE (created if absent) and warm-load it at \
                startup. Writes are flushed behind the request path, so the \
                hot path never blocks on disk; recovery after a crash drops \
                only a damaged tail. Responses are byte-identical with or \
                without the store — it only changes how much is recomputed.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:"Requests per batch: cache-miss work inside a batch runs in \
                parallel on the domain pool; responses always come back in \
                request order.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the plan cache (responses are bit-identical either way; \
                this only changes how much work is recomputed).")
  in
  let cache_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Plan-cache capacity in entries (default: \
                \\$FUSECU_CACHE_ENTRIES or 4096; 0 disables the cache).")
  in
  let mapper =
    Arg.(
      value
      & opt
          (some
             (enum
                (List.map
                   (fun m -> (Fusecu_service.Engine.mapper_name m, m))
                   [ Fusecu_service.Engine.Mapper_bnb;
                     Fusecu_service.Engine.Mapper_principles;
                     Fusecu_service.Engine.Mapper_exhaustive;
                     Fusecu_service.Engine.Mapper_anneal ])))
          None
      & info [ "mapper" ] ~docv:"MAPPER"
          ~doc:"Search mapper behind uncached intra/fuse/chain computes: \
                'bnb' (exact branch-and-bound, the default), 'principles' \
                (closed-form plan only), 'exhaustive', or 'anneal'. Search \
                mappers verify-and-refine the principle plan, adopting the \
                searched schedule only on a strict traffic improvement, so \
                responses are byte-identical across mappers unless the \
                principles are beaten (counted in mapper_improved). Defaults \
                to \\$FUSECU_MAPPER or bnb.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"On shutdown, write full metrics (counters plus latency \
                histograms) as JSON to FILE ('-' for stderr). The in-band \
                {\"op\":\"stats\"} request reports only the deterministic \
                counters.")
  in
  let metrics_addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:"Serve live Prometheus text-format metrics (per-op request \
                counters and latency histograms, cache gauges) on a TCP \
                listener at ADDR (PORT or HOST:PORT; host defaults to \
                127.0.0.1). No HTTP framing: each connection receives the \
                exposition and is closed, so 'nc 127.0.0.1 PORT' is a \
                complete scrape.")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Log a warn-level NDJSON record (op, cache key, duration, \
                trace id) for any single plan computation taking at least MS \
                milliseconds. Requires --log-level warn or lower to be \
                visible.")
  in
  let defaults = Fusecu_service.Server.default_socket_config in
  let max_conns =
    Arg.(
      value
      & opt int defaults.Fusecu_service.Server.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Socket mode: maximum concurrent client connections; the \
                accept loop applies backpressure (stops accepting) while N \
                connections are active.")
  in
  let timeout =
    Arg.(
      value
      & opt float defaults.Fusecu_service.Server.idle_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Socket mode: close a connection that goes SECONDS without \
                delivering a complete request line (also bounds per-response \
                write stalls). 0 disables the timeout.")
  in
  let max_line =
    let parse s =
      match Fusecu_util.Units.parse_bytes s with
      | Ok bytes when bytes >= 1 -> Ok bytes
      | Ok _ -> Error (`Msg "max-line must be at least one byte")
      | Error e -> Error (`Msg e)
    in
    let print fmt bytes =
      Format.pp_print_string fmt (Fusecu_util.Units.pp_bytes bytes)
    in
    Arg.(
      value
      & opt
          (conv ~docv:"SIZE" (parse, print))
          defaults.Fusecu_service.Server.max_line
      & info [ "max-line" ] ~docv:"SIZE"
          ~doc:"Socket mode: longest accepted request line (e.g. 64KB, 1MB); \
                longer input gets a bad_request error and the connection is \
                closed.")
  in
  let term =
    Term.(
      const run $ socket $ store_path $ batch $ no_cache $ cache_entries
      $ mapper $ metrics_file $ metrics_addr $ slow_ms $ max_conns $ timeout
      $ max_line $ trace_file_arg $ log_level_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batched planning daemon: newline-delimited JSON requests \
             (intra, fuse, regime, eval, chain, stats, metrics, shutdown) on \
             stdin or a Unix socket, answered in request order through a \
             canonicalizing plan cache. Socket mode serves clients \
             concurrently (see --max-conns, --timeout, --max-line) and shuts \
             down gracefully on SIGINT/SIGTERM or an in-band shutdown \
             request. Observability: --metrics-addr serves live Prometheus \
             text, --trace writes a Chrome trace profile, --log-level / \
             --slow-ms emit NDJSON logs on stderr.")
    term

(* ------------------------------------------------------------------ *)
(* route                                                               *)

let route_cmd =
  let run shards backends socket_dir store_dir batch no_cache cache_entries
      mapper max_conns timeout max_line vnodes metrics_addr trace log_level =
    with_observability ~trace:None ~log_level @@ fun () ->
    if shards < 1 then begin
      prerr_endline "route: --shards must be at least 1";
      exit 1
    end;
    let trace_dir =
      match trace with
      | None -> None
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Fusecu_util.Trace.start ();
        Some dir
    in
    (* Export the router's own spans and merge every per-process profile
       in the directory into a single Chrome timeline. The forked shards
       write shard-N.json on exit (spawn_shard ~trace), so this runs
       after stop_children has reaped them. *)
    let finish_trace () =
      match trace_dir with
      | None -> ()
      | Some dir ->
        Fusecu_util.Trace.stop ();
        Fusecu_util.Trace.export ~pid:(Unix.getpid ()) ~process_name:"router"
          (Filename.concat dir "router.json");
        let parts =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f ->
                 Filename.check_suffix f ".json" && f <> "merged.json")
          |> List.sort compare
          |> List.filter_map (fun f ->
                 let path = Filename.concat dir f in
                 match
                   Fusecu_util.Json.parse
                     (In_channel.with_open_text path In_channel.input_all)
                 with
                 | Ok j -> Some j
                 | Error e ->
                   Printf.eprintf "route: --trace: skipping %s: %s\n" path e;
                   None)
        in
        (match Fusecu_util.Trace.merge_chrome parts with
        | Ok merged ->
          Out_channel.with_open_text (Filename.concat dir "merged.json")
            (fun oc ->
              Out_channel.output_string oc (Fusecu_util.Json.print merged ^ "\n"))
        | Error e -> Printf.eprintf "route: --trace: merge failed: %s\n" e)
    in
    let router_config =
      { Fusecu_service.Router.idle_timeout = timeout;
        max_line;
        vnodes = max 1 vnodes }
    in
    let front backend_paths =
      let metrics =
        match metrics_addr with
        | None -> None
        | Some _ -> Some (Fusecu_service.Metrics.create ())
      in
      let exporter =
        match (metrics_addr, metrics) with
        | Some addr, Some m -> (
          try
            Some
              (Fusecu_service.Server.start_metrics_exporter
                 ~render:(fun () ->
                   Fusecu_service.Router.fleet_prometheus_render ~metrics:m
                     ~sockets:backend_paths ())
                 ~addr)
          with
          | Invalid_argument msg | Failure msg ->
            prerr_endline msg;
            exit 1
          | Unix.Unix_error (e, _, _) ->
            prerr_endline
              (Printf.sprintf "metrics-addr %s: %s" addr (Unix.error_message e));
            exit 1)
        | _ -> None
      in
      Fun.protect
        ~finally:(fun () ->
          Option.iter Fusecu_service.Server.stop_metrics_exporter exporter)
        (fun () ->
          try
            Fusecu_service.Router.run ~config:router_config ?metrics
              ~backends:backend_paths ~input:stdin ~output:stdout ()
          with Failure msg | Invalid_argument msg ->
            prerr_endline msg;
            exit 1)
    in
    Fun.protect ~finally:finish_trace @@ fun () ->
    match backends with
    | _ :: _ ->
      (* externally-managed backends: just front them *)
      front backends
    | [] ->
      (* own the fleet: fork one serve-socket child per shard *)
      let default = Fusecu_service.Engine.default_config () in
      let cache_entries =
        match cache_entries with
        | Some n -> max 0 n
        | None -> default.cache_entries
      in
      let engine_config =
        { default with
          Fusecu_service.Engine.cache_enabled =
            (not no_cache) && cache_entries > 0;
          cache_entries;
          mapper = Option.value mapper ~default:default.Fusecu_service.Engine.mapper }
      in
      let dir =
        match socket_dir with
        | Some d ->
          if not (Sys.file_exists d) then Unix.mkdir d 0o755;
          d
        | None ->
          let d =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "fusecu-route-%d" (Unix.getpid ()))
          in
          Unix.mkdir d 0o700;
          d
      in
      let server_config =
        { Fusecu_service.Server.max_conns; idle_timeout = timeout; max_line }
      in
      let make_engine i =
        let store =
          match store_dir with
          | None -> None
          | Some sd -> (
            if not (Sys.file_exists sd) then Unix.mkdir sd 0o755;
            let path = Filename.concat sd (Printf.sprintf "shard-%d.store" i) in
            match Fusecu_service.Store.open_ ~path with
            | Ok s -> Some s
            | Error msg -> failwith msg)
        in
        Fusecu_service.Engine.create ?store engine_config
      in
      let children =
        List.init shards (fun i ->
            let socket = Filename.concat dir (Printf.sprintf "shard-%d.sock" i) in
            let shard_trace =
              Option.map
                (fun td -> Filename.concat td (Printf.sprintf "shard-%d.json" i))
                trace_dir
            in
            Fusecu_service.Router.spawn_shard ~batch ?trace:shard_trace
              ~make_engine ~socket ~server_config i)
      in
      Fun.protect
        ~finally:(fun () ->
          Fusecu_service.Router.stop_children children;
          (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
        (fun () ->
          List.iter
            (fun (c : Fusecu_service.Router.child) ->
              if not (Fusecu_service.Router.wait_for_socket c.socket) then begin
                prerr_endline
                  (Printf.sprintf "route: shard socket %s never appeared"
                     c.socket);
                exit 1
              end)
            children;
          front
            (List.map
               (fun (c : Fusecu_service.Router.child) -> c.socket)
               children))
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Number of backend shard processes to fork (ignored when \
                --backend is given).")
  in
  let backends =
    Arg.(
      value
      & opt_all string []
      & info [ "backend" ] ~docv:"SOCKET"
          ~doc:"Route onto an externally-started 'serve --socket' backend \
                (repeatable; ring order follows the flag order). When absent, \
                the router forks its own --shards backends.")
  in
  let socket_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket-dir" ] ~docv:"DIR"
          ~doc:"Directory for the forked shards' sockets (default: a fresh \
                directory under the system temp dir).")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:"Give each forked shard a persistent plan store at \
                DIR/shard-N.store, warm-loaded at startup. Placement is a \
                pure function of the shard count, so each shard's store \
                stays authoritative for its keys across restarts.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Per-shard request batch size.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the shards' plan caches.")
  in
  let cache_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Per-shard plan-cache capacity (default: \
                \\$FUSECU_CACHE_ENTRIES or 4096).")
  in
  let mapper =
    Arg.(
      value
      & opt
          (some
             (enum
                (List.map
                   (fun m -> (Fusecu_service.Engine.mapper_name m, m))
                   [ Fusecu_service.Engine.Mapper_bnb;
                     Fusecu_service.Engine.Mapper_principles;
                     Fusecu_service.Engine.Mapper_exhaustive;
                     Fusecu_service.Engine.Mapper_anneal ])))
          None
      & info [ "mapper" ] ~docv:"MAPPER"
          ~doc:"Search mapper for the forked shards (see 'serve --mapper').")
  in
  let defaults = Fusecu_service.Server.default_socket_config in
  let max_conns =
    Arg.(
      value
      & opt int defaults.Fusecu_service.Server.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Per-shard concurrent-connection cap.")
  in
  let timeout =
    Arg.(
      value
      & opt float defaults.Fusecu_service.Server.idle_timeout
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Idle/read/write liveness bound, applied per backend by the \
                router and per connection by the shards. 0 disables it.")
  in
  let max_line =
    let parse s =
      match Fusecu_util.Units.parse_bytes s with
      | Ok bytes when bytes >= 1 -> Ok bytes
      | Ok _ -> Error (`Msg "max-line must be at least one byte")
      | Error e -> Error (`Msg e)
    in
    let print fmt bytes =
      Format.pp_print_string fmt (Fusecu_util.Units.pp_bytes bytes)
    in
    Arg.(
      value
      & opt
          (conv ~docv:"SIZE" (parse, print))
          defaults.Fusecu_service.Server.max_line
      & info [ "max-line" ] ~docv:"SIZE"
          ~doc:"Longest accepted request or response line (e.g. 64KB, 1MB).")
  in
  let vnodes =
    Arg.(
      value
      & opt int Fusecu_service.Router.default_config.Fusecu_service.Router.vnodes
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual nodes per backend on the consistent-hash ring.")
  in
  let metrics_addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:"Serve live fleet-wide Prometheus text on a TCP listener at \
                ADDR (PORT or HOST:PORT): the router's own series (requests, \
                routed bytes, fan-outs, per-shard in-flight gauges) unlabeled \
                plus every backend's series labeled {shard=\"i\"}, scraped \
                out-of-band with quiet metrics requests that move no counter \
                — concurrent scrapes cannot perturb the routed transcript.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"DIR"
          ~doc:"Profile the whole fleet: the router writes its spans \
                (enqueue, route, reassemble) to DIR/router.json, each forked \
                shard writes DIR/shard-N.json on exit, and the router merges \
                everything into DIR/merged.json — one Chrome trace with a \
                process lane per shard, spans correlated by the propagated \
                trace context. Tracing never writes to stdout, so the routed \
                transcript is unchanged.")
  in
  let term =
    Term.(
      const run $ shards $ backends $ socket_dir $ store_dir $ batch $ no_cache
      $ cache_entries $ mapper $ max_conns $ timeout $ max_line $ vnodes
      $ metrics_addr $ trace_dir $ log_level_arg)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Front a sharded planning tier: consistent-hash each request's \
             canonical cache key onto N backend shards ('serve --socket' \
             processes, forked by the router or given via --backend), forward \
             the NDJSON lines, and reassemble responses in request order on \
             stdout. The transcript is byte-identical for every shard count \
             (control lines excepted — stats and metrics fan out to every \
             shard and return the Fleet merge: counters summed, histograms \
             merged bucket-wise, per-shard payloads under 'shards'). \
             --store-dir makes the fleet persistent: shard caches survive \
             restarts and warm-load at startup. Observability: --trace merges \
             router and shard profiles into one timeline, --metrics-addr \
             serves fleet-wide Prometheus text with per-shard labels.")
    term

(* ------------------------------------------------------------------ *)
(* plan                                                                *)

let plan_cmd =
  let run model_name layers buf mode intensity =
    match Fusecu_workloads.Zoo.find model_name with
    | None ->
      Printf.eprintf "unknown model %S (try: %s)\n" model_name
        (String.concat ", "
           (List.map
              (fun (m : Fusecu_workloads.Model.t) -> m.name)
              Fusecu_workloads.Zoo.all));
      exit 1
    | Some model -> (
      let open Fusecu_planner in
      let open Fusecu_workloads in
      let g = Graph.stack (Graph.of_model model) ~layers in
      let overlap = { Overlap.intensity } in
      match Partition.plan ~overlap ~mode g buf with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok p ->
        let t =
          Fusecu_util.Table.create
            [ "Group"; "Members"; "Count"; "Ops"; "Traffic"; "Hidden" ]
        in
        let rows =
          List.mapi
            (fun i (gr : Partition.group) ->
              [ string_of_int i;
                String.concat " > "
                  (List.map (fun (n : Graph.node) -> n.Graph.name)
                     gr.Partition.members);
                string_of_int gr.Partition.count;
                string_of_int
                  (List.fold_left
                     (fun a n -> a + List.length (Group.ops n))
                     0 gr.Partition.members);
                Fusecu_util.Units.pp_count gr.Partition.traffic;
                Fusecu_util.Units.pp_count gr.Partition.hidden ])
            p.Partition.groups
        in
        Fusecu_util.Table.print (Fusecu_util.Table.add_rows t rows);
        let name_of id = (Graph.find g id).Graph.name in
        (match p.Partition.selected with
        | [] -> print_endline "fused edges: none (all-singleton is optimal)"
        | es ->
          Printf.printf "fused edges: %s\n"
            (String.concat ", "
               (List.map
                  (fun (e : Partition.edge) ->
                    Printf.sprintf "%s->%s" (name_of e.Partition.src)
                      (name_of e.Partition.dst))
                  es)));
        Printf.printf "effective traffic: %s (raw %s, %s hidden by overlap)\n"
          (Fusecu_util.Units.pp_count p.Partition.effective)
          (Fusecu_util.Units.pp_count p.Partition.traffic)
          (Fusecu_util.Units.pp_count p.Partition.hidden);
        let saved =
          p.Partition.unfused_effective - p.Partition.effective
        in
        Printf.printf "vs unfused baseline %s: %s saved (%.1f%%)\n"
          (Fusecu_util.Units.pp_count p.Partition.unfused_effective)
          (Fusecu_util.Units.pp_count saved)
          (if p.Partition.unfused_effective = 0 then 0.0
           else
             100.0 *. float_of_int saved
             /. float_of_int p.Partition.unfused_effective);
        let s = p.Partition.stats in
        Printf.printf
          "search: %d candidate edges, %d components, %d dp states, %d b&b \
           nodes (%d pruned), %d group evals\n"
          s.Partition.candidate_edges s.Partition.components
          s.Partition.dp_states s.Partition.bnb_nodes s.Partition.bnb_pruned
          s.Partition.group_evals)
  in
  let model =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Model name from Table II (e.g. Bert, LLaMA2).")
  in
  let layers =
    Arg.(
      value & opt int 1
      & info [ "layers" ] ~docv:"N" ~doc:"Encoder layers to stack.")
  in
  let intensity =
    Arg.(
      value & opt int Fusecu_planner.Overlap.default.intensity
      & info [ "intensity" ] ~docv:"I"
          ~doc:"Arithmetic-intensity threshold of the inter-group overlap \
                model: boundary spills up to macs/I - traffic are hidden \
                behind compute by double-buffering. 0 disables the credit.")
  in
  let term =
    Term.(const run $ model $ layers $ buffer_arg $ mode_arg $ intensity)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Partition a whole model graph into fusion groups: dynamic \
             programming over chain regions (branch-and-bound elsewhere) \
             picks the globally optimal grouping under the principle-based \
             per-group cost, re-materialization charges, and the \
             double-buffering overlap credit.")
    term

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_cmd =
  let run cases seed max_dim repro mapper graphs graph_repro nests nest_repro
      trace log_level =
    with_observability ~trace ~log_level @@ fun () ->
    let open Fusecu_oracle in
    match nest_repro with
    | Some spec -> (
      match Nest_check.check_spec spec with
      | Error e ->
        prerr_endline ("--nest-repro: " ^ e);
        exit 2
      | Ok (p, o) ->
        Printf.printf "%s: %d checks\n" (Nest_check.to_spec p)
          o.Nest_check.checks;
        if o.Nest_check.failures = [] then print_endline "no divergence"
        else begin
          List.iter
            (fun (f : Nest_check.failure) ->
              Printf.printf "[%s] %s\n" f.Nest_check.check f.Nest_check.detail)
            o.Nest_check.failures;
          exit 1
        end)
    | None when nests ->
      let max_dim = min max_dim 12 in
      let report =
        Nest_check.soak ~log:prerr_endline ~cases ~seed ~max_dim ()
      in
      Format.printf "%a@." Nest_check.pp_report report;
      if not (Nest_check.ok report) then exit 1
    | None -> (
    match graph_repro with
    | Some spec -> (
      match Graph_check.check_spec spec with
      | Error e ->
        prerr_endline ("--graph-repro: " ^ e);
        exit 2
      | Ok (t, o) ->
        Printf.printf "%s: %d checks\n" (Graph_check.to_spec t)
          o.Graph_check.checks;
        if o.Graph_check.failures = [] then print_endline "no divergence"
        else begin
          List.iter
            (fun (f : Graph_check.failure) ->
              Printf.printf "[%s] %s\n" f.Graph_check.check
                f.Graph_check.detail)
            o.Graph_check.failures;
          exit 1
        end)
    | None when graphs ->
      let report =
        Graph_check.run ~log:prerr_endline ~cases ~seed ()
      in
      Format.printf "%a@." Graph_check.pp_report report;
      if not (Graph_check.ok report) then exit 1
    | None -> (
    match repro with
    | Some spec -> (
      match Oracle.check_spec ~mapper spec with
      | Error e ->
        prerr_endline ("--repro: " ^ e);
        exit 2
      | Ok (p, outcome) ->
        Format.printf "%a: %d checks@." Problem.pp p outcome.Check.checks;
        if outcome.Check.failures = [] then print_endline "no divergence"
        else begin
          List.iter
            (fun (f : Check.failure) ->
              Printf.printf "[%s] %s\n" f.Check.check f.Check.detail)
            outcome.Check.failures;
          exit 1
        end)
    | None ->
      let report =
        Oracle.run ~log:prerr_endline ~mapper ~cases ~seed ~max_dim ()
      in
      Format.printf "%a@." Oracle.pp_report report;
      if not (Oracle.ok report) then exit 1))
  in
  let cases =
    Arg.(
      value & opt int 500
      & info [ "cases" ] ~docv:"N" ~doc:"Random problems to generate and check.")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"S"
          ~doc:"PRNG seed; the whole run is a pure function of (seed, cases, \
                max-dim), on any machine and OCaml version.")
  in
  let max_dim =
    Arg.(
      value & opt int 24
      & info [ "max-dim" ] ~docv:"D"
          ~doc:"Largest generated matmul dimension (small keeps the \
                exhaustive ground truth cheap while still crossing every \
                regime boundary).")
  in
  let repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"SPEC"
          ~doc:"Re-check a single problem given by its spec (e.g. \
                m=7,k=3,l=4,l2=2,bs=16) — the one-liner printed for every \
                shrunk counterexample.")
  in
  let mapper =
    Arg.(
      value
      & opt
          (enum
             [ ("principles", Fusecu_oracle.Check.Principles);
               ("bnb", Fusecu_oracle.Check.Bnb) ])
          Fusecu_oracle.Check.Principles
      & info [ "mapper" ] ~docv:"MAPPER"
          ~doc:"Check set: 'principles' (default) runs the three-way \
                conformance checks; 'bnb' additionally asserts the \
                branch-and-bound mapper reproduces the exhaustive optimum \
                bit-for-bit on every generated problem.")
  in
  let graphs =
    Arg.(
      value & flag
      & info [ "graphs" ]
          ~doc:"Check the whole-model fusion planner instead: on seeded \
                random workload graphs, the DP / branch-and-bound \
                partitioner must match exhaustive enumeration exactly \
                (cost, traffic, and chosen cuts under the deterministic \
                tie-break).")
  in
  let graph_repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph-repro" ] ~docv:"SPEC"
          ~doc:"Re-check a single planner problem given by its graph spec \
                (e.g. m=4,b=256,nodes=1*3:5|1*5:2,edges=0-1) — the \
                one-liner printed for every shrunk graph counterexample.")
  in
  let nests =
    Arg.(
      value & flag
      & info [ "nests" ]
          ~doc:"Check the projective loop-nest IR instead: on seeded random \
                nests (matmul, conv2d, batched/grouped matmul, attention \
                pairs), the nest branch-and-bound must reproduce the \
                exhaustive Divisors-lattice optimum bit-for-bit, the \
                analytic cost must match the tile-replay simulator, and \
                matmul winners must match the legacy exhaustive search. \
                max-dim is clamped to 12 to keep rank-7 conv ground truth \
                exact.")
  in
  let nest_repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "nest-repro" ] ~docv:"SPEC"
          ~doc:"Re-check a single nest problem given by its spec (e.g. \
                kind=conv,n=1,c=2,h=6,w=6,k=3,r=3,s=3,st=1,di=1,pa=0,bs=64) \
                — the one-liner printed for every shrunk nest \
                counterexample.")
  in
  let term =
    Term.(
      const run $ cases $ seed $ max_dim $ repro $ mapper $ graphs
      $ graph_repro $ nests $ nest_repro $ trace_file_arg $ log_level_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential conformance oracle: cross-check the principles \
             against exhaustive search, the analytic cost model against the \
             loop-nest simulator, and both against the communication lower \
             bounds, on seeded random problems spanning all buffer regimes. \
             Failures are shrunk to minimal counterexamples and printed as \
             reproducible one-liners; exits non-zero on any divergence.")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let run m k l1 l2 n seed column =
    let open Fusecu_rtl in
    let cluster = Fusecu_sim.create ~n () in
    let a = Matrix.random ~seed ~rows:m ~cols:k () in
    let b = Matrix.random ~seed:(seed + 1) ~rows:k ~cols:l1 () in
    let d = Matrix.random ~seed:(seed + 2) ~rows:l1 ~cols:l2 () in
    let reference = Matrix.mul (Matrix.mul a b) d in
    let result =
      if column then
        Fusecu_sim.run_column_fused cluster Fusecu_sim.Square ~a ~b ~d
      else Fusecu_sim.run_tile_fused cluster Fusecu_sim.Square ~a ~b ~d
    in
    match result with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok (e, cycles) ->
      Printf.printf "fused (%s) (%dx%d x %dx%d) x %dx%d on a %dx%d CU: %d cycles\n"
        (if column then "column" else "tile")
        m k k l1 l1 l2 n n cycles;
      if Matrix.equal e reference then
        print_endline "result matches the reference product"
      else begin
        print_endline "MISMATCH against the reference product";
        exit 1
      end
  in
  let int_opt name default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let term =
    Term.(
      const run
      $ int_opt "m" 8 "Rows of A."
      $ int_opt "k" 8 "Columns of A."
      $ int_opt "l1" 8 "Columns of B (intermediate width)."
      $ int_opt "l2" 8 "Columns of D."
      $ int_opt "n" 16 "Compute-unit dimension."
      $ int_opt "seed" 7 "Random data seed."
      $ Arg.(value & flag & info [ "column" ] ~doc:"Use column fusion instead of tile fusion."))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a fused matmul chain on the cycle-level FuseCU array model.")
    term

(* ------------------------------------------------------------------ *)
(* trace-merge                                                         *)

let trace_merge_cmd =
  let run output inputs =
    let parts =
      List.map
        (fun path ->
          let text =
            try In_channel.with_open_text path In_channel.input_all
            with Sys_error msg ->
              prerr_endline msg;
              exit 1
          in
          match Fusecu_util.Json.parse text with
          | Ok j -> j
          | Error e ->
            prerr_endline (path ^ ": " ^ e);
            exit 1)
        inputs
    in
    match Fusecu_util.Trace.merge_chrome parts with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok merged ->
      let text = Fusecu_util.Json.print merged ^ "\n" in
      if output = "-" then print_string text
      else
        Out_channel.with_open_text output (fun oc ->
            Out_channel.output_string oc text)
  in
  let inputs =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:"Chrome trace-event JSON profiles to merge (e.g. the \
                router.json and shard-N.json files a traced 'route' run \
                leaves behind).")
  in
  let output =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the merged trace to FILE ('-' for stdout).")
  in
  let term = Term.(const run $ output $ inputs) in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:"Merge per-process Chrome trace profiles into one timeline: \
             events are pooled and stably sorted by timestamp (process-name \
             metadata first), so a traced routed run becomes a single \
             chrome://tracing / Perfetto view with a lane per process — \
             router enqueue/route/reassemble spans over each shard's \
             parse/cache/mapper/respond spans, correlated by the propagated \
             trace context ('tc') span arguments. All processes share the \
             wall clock, so no timestamp fix-up is applied.")
    term

let () =
  let doc = "principle-based dataflow optimization for operator-fused tensor accelerators" in
  let info = Cmd.info "fusecu_opt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ intra_cmd; fuse_cmd; regime_cmd; search_cmd; eval_cmd; explain_cmd;
            trace_cmd; hierarchy_cmd; chain_cmd; plan_cmd; sweep_cmd;
            graph_cmd; area_cmd; simulate_cmd; serve_cmd; route_cmd;
            trace_merge_cmd; check_cmd ]))
